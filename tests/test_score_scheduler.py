"""Tests for SCORE: loop orders, tiling, binding and placements."""

import pytest

from repro.core.classify import classify_dependencies
from repro.hw.config import AcceleratorConfig
from repro.score.loop_order import natural_loop_order, schedule_adjacent
from repro.score.schedule_ir import LoopOrder, Route
from repro.score.scheduler import Score, ScoreOptions
from repro.score.tiling import choose_tiling, tile_bytes_of
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.gnn import build_gnn_dag, cora_problem, protein_problem
from repro.workloads.matrices import FV1, SHALLOW_WATER1
from repro.workloads.resnet import build_resnet_block_dag

CFG = AcceleratorConfig()


@pytest.fixture(scope="module")
def cg_sched():
    dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
    return Score(CFG).schedule(dag)


@pytest.fixture(scope="module")
def resnet_sched():
    return Score(CFG).schedule(build_resnet_block_dag())


@pytest.fixture(scope="module")
def gnn_sched():
    return Score(CFG).schedule(build_gnn_dag(protein_problem()))


class TestLoopOrder:
    def test_dominant_rank_outermost(self, cg_sched):
        cdag = cg_sched.classified
        op = cg_sched.dag.op("1:spmm@0")
        order = natural_loop_order(op, cdag)
        assert order.outermost == "m"

    def test_contraction_before_small_uncontracted(self, cg_sched):
        # SpMM traverses row -> nonzero -> column (m, k, n).
        op = cg_sched.dag.op("1:spmm@0")
        order = natural_loop_order(op, cg_sched.classified)
        assert order.ranks == ("m", "k", "n")

    def test_gram_contracted_outermost(self, cg_sched):
        op = cg_sched.dag.op("2a:gram@0")
        order = natural_loop_order(op, cg_sched.classified)
        assert order.outermost == "k2"

    def test_balanced_node_leads_uncontracted(self, resnet_sched):
        op = resnet_sched.dag.op("c1:conv@0")
        order = natural_loop_order(op, resnet_sched.classified)
        assert order.outermost == "m"
        assert order.outermost not in op.contracted

    def test_parallel_ranks_are_innermost(self, cg_sched):
        op = cg_sched.dag.op("1:spmm@0")
        order = natural_loop_order(op, cg_sched.classified)
        assert order.parallel == order.ranks[-2:]

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            LoopOrder(ranks=("m", "m"))

    def test_parallel_must_be_in_ranks(self):
        with pytest.raises(ValueError):
            LoopOrder(ranks=("m",), parallel=("q",))

    def test_schedule_adjacent(self):
        assert schedule_adjacent(3, 4)
        assert not schedule_adjacent(3, 5)
        assert not schedule_adjacent(4, 3)


class TestTiling:
    def test_tile_covers_rank(self, cg_sched):
        dag = cg_sched.dag
        cdag = cg_sched.classified
        for op in dag.ops:
            s = choose_tiling(op, cdag, CFG)
            rank = op.rank(s.tile_rank)
            assert s.n_tiles * s.tile_size >= rank.size
            assert s.tile_size <= rank.size

    def test_tile_fits_double_buffered_stage(self, cg_sched):
        dag = cg_sched.dag
        for op in dag.ops:
            s = cg_sched.op_schedule(op.name)
            tb = tile_bytes_of(op, s)
            assert 2 * tb <= CFG.pipeline_buffer_bytes

    def test_small_tensors_assigned_to_rf(self, cg_sched):
        s = cg_sched.op_schedule("3:xupd@0")
        assert "Lambda@0" in s.rf_tensors

    def test_stationary_is_largest_input(self, cg_sched):
        s = cg_sched.op_schedule("1:spmm@0")
        assert s.stationary_tensor == "A"


class TestCgPlacements:
    def test_s_pipelines_into_gram_and_chords_to_rupd(self, cg_sched):
        p = cg_sched.placement("S@0")
        assert p.route_for("2a:gram@0") is Route.PIPELINE
        assert p.route_for("4:rupd@0") is Route.CHORD
        assert p.write_route is Route.CHORD  # has a delayed consumer

    def test_r_pipelines_into_gram(self, cg_sched):
        p = cg_sched.placement("R@1")
        assert p.route_for("5:gram@0") is Route.PIPELINE
        assert p.route_for("7:pupd@0") is Route.CHORD
        assert p.route_for("4:rupd@1") is Route.CHORD

    def test_x_goes_through_chord_despite_pipelineable_edge(self, cg_sched):
        # 3 -> 3' is classified pipelineable but not schedule-adjacent.
        p = cg_sched.placement("X@1")
        assert p.route_for("3:xupd@1") is Route.CHORD

    def test_small_tensors_live_in_rf(self, cg_sched):
        for name in ("Delta@0", "Lambda@0", "Gamma@1", "Phi@0"):
            p = cg_sched.placement(name)
            assert p.write_route is Route.REGISTER_FILE

    def test_input_a_routes_to_chord(self, cg_sched):
        p = cg_sched.placement("A")
        assert p.write_route is Route.DRAM      # program input born in DRAM
        assert all(r is Route.CHORD for r in p.consumer_routes.values())

    def test_no_swizzles_in_cg(self, cg_sched):
        for p in cg_sched.placements.values():
            assert p.swizzled_consumers == ()

    def test_pipeline_count(self, cg_sched):
        # Per iteration: 1->2a (S) and 4->5 (R).
        assert cg_sched.n_pipelined_edges == 4  # 2 per iteration x 2 iters


class TestResNetPlacements:
    def test_skip_tensor_fully_onchip(self, resnet_sched):
        p = resnet_sched.placement("T0@0")
        assert p.route_for("c1:conv@0") is Route.PIPELINE
        assert p.route_for("add:residual@0") is Route.HOLD
        assert p.write_route is Route.PIPELINE  # all consumers covered

    def test_chain_intermediates_fully_onchip(self, resnet_sched):
        for t in ("T1@0", "T2@0", "T3@0"):
            assert resnet_sched.placement(t).write_route is Route.PIPELINE

    def test_hold_window_fits(self, resnet_sched):
        assert resnet_sched.n_held_edges == 1
        hold = next(iter(resnet_sched.holds.values()))
        assert hold.depth == 3
        assert hold.window_bytes <= CFG.pipeline_buffer_bytes


class TestGnnPlacements:
    def test_intermediate_pipelines(self, gnn_sched):
        p = gnn_sched.placement("AX@0")
        assert p.route_for("comb@0") is Route.PIPELINE
        assert p.write_route is Route.PIPELINE


class TestOptions:
    def test_disable_pipelining(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=1))
        sched = Score(CFG, ScoreOptions(enable_pipelining=False)).schedule(dag)
        assert sched.n_pipelined_edges == 0
        p = sched.placement("S@0")
        assert p.route_for("2a:gram@0") is Route.CHORD

    def test_disable_holds_degrades_skip_to_chord(self):
        sched = Score(CFG, ScoreOptions(enable_holds=False)).schedule(
            build_resnet_block_dag()
        )
        p = sched.placement("T0@0")
        assert p.route_for("add:residual@0") is Route.CHORD
        assert p.write_route is Route.CHORD

    def test_chord_tensors_listing(self, cg_sched):
        chord = cg_sched.chord_tensors()
        assert "S@0" in chord
        assert "X@1" in chord
        assert "Delta@0" not in chord
