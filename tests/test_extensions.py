"""Tests for the extension modules: Tailors, SRRIP, CHORD timeline/audit,
cluster timing, the MLP chain negative control, and multi-node scaling."""

import pytest

from repro.analysis.scaling import (
    noc_seconds_per_run,
    scaling_report,
    simulate_cg_scaling,
)
from repro.buffers.cache import SetAssociativeCache
from repro.buffers.lru import LruPolicy
from repro.buffers.srrip import SrripPolicy
from repro.buffers.tailors import TailorsBuffer
from repro.baselines.runner import run_workload_config
from repro.chord.buffer import ChordBuffer
from repro.chord.hints import ReuseHints, TensorHints
from repro.chord.timeline import occupancy_series, render_occupancy, traffic_audit
from repro.hw.config import AcceleratorConfig
from repro.hw.noc import NocConfig
from repro.score.scheduler import Score
from repro.sim.cluster_timing import (
    cluster_seconds,
    describe_clusters,
    form_clusters,
    pipeline_aware_time,
)
from repro.sim.engine import ScheduleEngine
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.dnn import MlpProblem, build_mlp_dag
from repro.workloads.matrices import FV1, SHALLOW_WATER1
from repro.workloads.registry import Workload, cg_workload, resnet_workload

CFG = AcceleratorConfig()


class TestTailors:
    def test_within_booking_is_explicit(self):
        t = TailorsBuffer(100, overbook_fraction=0.2)
        t.begin_tile()
        assert t.fill(80) == 0
        assert not t.tile_overflowed()

    def test_overbooked_words_spill_implicitly(self):
        t = TailorsBuffer(100, overbook_fraction=0.2)
        t.begin_tile()
        over = t.fill(100)
        assert over == 20
        assert t.tile_overflowed()
        assert t.overbooked_words == 20
        # Overbooked words round-trip: staging + refetch.
        assert t.stats.dram_read_bytes == 100 + 20

    def test_incremental_fills_cross_boundary_once(self):
        t = TailorsBuffer(100, overbook_fraction=0.0)
        t.begin_tile()
        assert t.fill(60) == 0
        assert t.fill(60) == 20
        assert t.fill(10) == 10

    def test_new_tile_resets(self):
        t = TailorsBuffer(100, overbook_fraction=0.5)
        t.begin_tile()
        t.fill(100)
        t.begin_tile()
        assert not t.tile_overflowed()

    def test_validation(self):
        with pytest.raises(ValueError):
            TailorsBuffer(0)
        with pytest.raises(ValueError):
            TailorsBuffer(10, overbook_fraction=1.5)
        t = TailorsBuffer(10)
        with pytest.raises(ValueError):
            t.fill(-1)


class TestSrrip:
    def test_always_long_insertion(self):
        p = SrripPolicy()
        st = p.make_set_state(4)
        for w in range(4):
            p.on_fill(st, w)
        assert st.rrpv == [2, 2, 2, 2]

    def test_usable_in_cache(self):
        cache = SetAssociativeCache(1024, 16, 4, SrripPolicy())
        for b in range(200):
            cache.access_line(b, False)
        assert cache.stats.misses == 200


class TestChordObservability:
    def _run(self):
        dag = build_cg_dag(CgProblem(matrix=SHALLOW_WATER1, n=16, iterations=3))
        sched = Score(CFG).schedule(dag)
        engine = ScheduleEngine(CFG)
        engine.run(sched)
        return engine.last_chord

    def test_history_recorded(self):
        chord = self._run()
        assert chord is not None
        assert len(chord.history) > 0
        assert all(u <= chord.capacity_bytes for _, u in chord.history)

    def test_occupancy_series_downsamples(self):
        chord = self._run()
        series = occupancy_series(chord, buckets=10)
        assert 1 <= len(series) <= 11

    def test_render_occupancy(self):
        chord = self._run()
        art = render_occupancy(chord, width=40, height=6)
        assert "|" in art and "capacity" in art

    def test_traffic_audit_lists_heavy_tensors(self):
        chord = self._run()
        audit = traffic_audit(chord)
        assert "hit rate" in audit
        # The skewed CG tensors must appear in the audit.
        assert any(name in audit for name in ("P@1", "X@1", "S@0", "R@1", "A"))

    def test_per_tensor_accounting_conserves(self):
        chord = self._run()
        total_miss = sum(r["miss"] for r in chord.per_tensor.values())
        assert total_miss == chord.stats.misses

    def test_empty_buffer_renders(self):
        hints = ReuseHints({})
        chord = ChordBuffer(100, hints)
        assert "no CHORD events" in render_occupancy(chord)


class TestClusterTiming:
    @pytest.fixture(scope="class")
    def cg_sched(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        return Score(CFG).schedule(dag)

    def test_clusters_partition_program(self, cg_sched):
        clusters = form_clusters(cg_sched)
        ops = [o for c in clusters for o in c.ops]
        assert ops == list(cg_sched.dag.op_names)

    def test_pipelined_pairs_share_cluster(self, cg_sched):
        clusters = form_clusters(cg_sched)
        by_op = {}
        for i, c in enumerate(clusters):
            for o in c.ops:
                by_op[o] = i
        # 1 -> 2a and 4 -> 5 are realized pipelines -> same cluster.
        assert by_op["1:spmm@0"] == by_op["2a:gram@0"]
        assert by_op["4:rupd@0"] == by_op["5:gram@0"]
        # 3 -> 4 is not pipelined -> different clusters.
        assert by_op["3:xupd@0"] != by_op["4:rupd@0"]

    def test_resnet_is_one_big_cluster(self):
        sched = Score(CFG).schedule(resnet_workload().build())
        clusters = form_clusters(sched)
        assert max(c.depth for c in clusters) == 5  # pre..add chain

    def test_cluster_time_bounded_by_serial_time(self, cg_sched):
        # Stage-concurrent execution can't beat perfect parallelism or lose
        # to full serialisation by more than fill/drain.
        for c in form_clusters(cg_sched):
            serial = sum(
                cg_sched.dag.op(o).macs for o in c.ops
            ) / CFG.peak_macs_per_s
            t = cluster_seconds(c, cg_sched, CFG)
            assert t >= serial * 0.99  # can't exceed the work bound
            assert t <= serial * (1 + c.depth)

    def test_pipeline_aware_time_at_least_roofline(self, cg_sched):
        t = pipeline_aware_time(cg_sched, CFG, dram_bytes=10**6)
        roofline_mem = 10**6 / CFG.dram_bandwidth_bytes_per_s
        assert t >= roofline_mem

    def test_describe_runs(self, cg_sched):
        text = describe_clusters(cg_sched, CFG)
        assert "us" in text


class TestMlpChain:
    def test_chain_structure(self):
        dag = build_mlp_dag(MlpProblem(batch=256, widths=(256, 256, 256)))
        assert len(dag) == 2
        assert dag.consumers_of("H@1") == ("fc@1",)

    def test_no_delayed_dependencies(self):
        from repro.core.classify import classify_dependencies

        dag = build_mlp_dag()
        s = classify_dependencies(dag).summary()
        assert s["delayed_hold"] == 0
        assert s["delayed_writeback"] == 0
        assert s["pipelineable"] == len(dag) - 1

    def test_cello_wins_nothing_over_flat_on_chains(self):
        """The negative control: on linear DNN chains CELLO == FLAT == SET."""
        problem = MlpProblem()
        w = Workload(
            name="mlp/control", family="dnn",
            build=lambda: build_mlp_dag(problem),
        )
        flat = run_workload_config(w, "FLAT", CFG)
        sett = run_workload_config(w, "SET", CFG)
        cello = run_workload_config(w, "CELLO", CFG)
        assert cello.dram_bytes == flat.dram_bytes == sett.dram_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            MlpProblem(batch=0)
        with pytest.raises(ValueError):
            MlpProblem(widths=(64,))


class TestMultiNodeScaling:
    def test_noc_time_independent_of_m(self):
        noc = NocConfig(16)
        t = noc_seconds_per_run(16, 10, noc, CFG)
        assert t > 0
        # No M anywhere in the expression: the paper's key property.

    def test_strong_scaling_efficiency(self):
        points = simulate_cg_scaling(
            SHALLOW_WATER1, n=16, iterations=5, node_counts=(1, 4, 16), cfg=CFG
        )
        assert points[0].n_nodes == 1
        assert points[0].efficiency == pytest.approx(1.0)
        # Speedup grows with nodes and efficiency stays high: the NoC moves
        # only N x N' tensors.
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)
        assert points[-1].efficiency > 0.5

    def test_report_renders(self):
        points = simulate_cg_scaling(
            FV1, n=16, iterations=2, node_counts=(1, 4), cfg=CFG
        )
        rep = scaling_report(points)
        assert "efficiency" in rep


class TestFig01Fig07:
    def test_report_contains_both_dags(self):
        from repro.experiments import fig01_fig07_dag

        rep = fig01_fig07_dag.report(iterations=2)
        assert "1:spmm@0" in rep
        assert "add:residual@0" in rep
        assert "~~>" in rep       # delayed writeback present in CG
        assert "-->(hold)" in rep  # hold present in ResNet
