"""Edge-case and failure-injection tests for the engines and schedule IR."""

from dataclasses import replace

import pytest

from repro.buffers.brrip import BrripPolicy
from repro.buffers.lru import LruPolicy
from repro.hw.config import AcceleratorConfig
from repro.score.schedule_ir import Route, TensorPlacement
from repro.score.scheduler import Score
from repro.sim.engine import CacheEngine, EngineOptions, ScheduleEngine
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.matrices import FV1

CFG = AcceleratorConfig()


def small_cg():
    return build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))


class TestSwizzleCharging:
    def test_forced_swizzle_charges_round_trip(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        base = ScheduleEngine(CFG).run(sched)
        # Force one streaming consumer of S@0 to be swizzled.
        p = sched.placements["S@0"]
        sched.placements["S@0"] = replace(p, swizzled_consumers=("4:rupd@0",))
        forced = ScheduleEngine(CFG).run(sched)
        s_bytes = dag.tensor("S@0").bytes
        assert forced.dram_bytes == base.dram_bytes + 2 * s_bytes

    def test_swizzle_charge_can_be_disabled(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        p = sched.placements["S@0"]
        sched.placements["S@0"] = replace(p, swizzled_consumers=("4:rupd@0",))
        base = ScheduleEngine(CFG, EngineOptions(charge_swizzle=False)).run(sched)
        clean_sched = Score(CFG).schedule(dag)
        clean = ScheduleEngine(CFG).run(clean_sched)
        assert base.dram_bytes == clean.dram_bytes

    def test_rf_swizzles_never_charged(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        base = ScheduleEngine(CFG).run(sched)
        p = sched.placements["Lambda@0"]  # RF-resident small tensor
        sched.placements["Lambda@0"] = replace(
            p, swizzled_consumers=tuple(p.consumer_routes)
        )
        forced = ScheduleEngine(CFG).run(sched)
        assert forced.dram_bytes == base.dram_bytes


class TestDirectDramRoute:
    def test_direct_routes_charge_full_tensor(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        # Rewire S@0 entirely to DRAM-direct (a scratchpad-less fallback).
        p = sched.placements["S@0"]
        routes = {c: Route.DRAM for c in p.consumer_routes}
        sched.placements["S@0"] = TensorPlacement(
            tensor="S@0", write_route=Route.DRAM, consumer_routes=routes,
            major_rank=p.major_rank, swizzled_consumers=(),
        )
        r = ScheduleEngine(CFG).run(sched)
        s_bytes = dag.tensor("S@0").bytes
        # One write + one read per consumer, uncachable.
        assert r.dram_bytes >= s_bytes * (1 + len(routes))


class TestPlacementApi:
    def test_route_for_unknown_consumer_raises(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        with pytest.raises(KeyError):
            sched.placement("S@0").route_for("not-a-consumer")

    def test_unknown_tensor_placement_raises(self):
        dag = small_cg()
        sched = Score(CFG).schedule(dag)
        with pytest.raises(KeyError):
            sched.placement("nope")
        with pytest.raises(KeyError):
            sched.op_schedule("nope")


class TestCacheEngineShapes:
    @pytest.mark.parametrize("policy_cls", [LruPolicy, BrripPolicy])
    def test_coarsening_preserves_shape_across_policies(self, policy_cls):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=1, iterations=1))
        exact = CacheEngine(CFG, policy_cls(), granularity=1).run(dag)
        coarse = CacheEngine(CFG, policy_cls(), granularity=4).run(dag)
        assert 0.7 < coarse.dram_bytes / exact.dram_bytes < 1.3

    def test_interleave_chunk_configurable(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=1, iterations=1))
        fine = CacheEngine(CFG, LruPolicy(), granularity=4,
                           interleave_chunk=1024).run(dag)
        wide = CacheEngine(CFG, LruPolicy(), granularity=4,
                           interleave_chunk=65536).run(dag)
        # Both are valid simulations of the same schedule.
        assert fine.total_macs == wide.total_macs
        assert fine.dram_bytes > 0 and wide.dram_bytes > 0


class TestEngineAudit:
    def test_last_chord_exposed(self):
        sched = Score(CFG).schedule(small_cg())
        eng = ScheduleEngine(CFG)
        assert eng.last_chord is None
        eng.run(sched)
        assert eng.last_chord is not None
        assert eng.last_dram is not None
        assert eng.last_dram.total_bytes > 0

    def test_dram_ledger_attribution(self):
        sched = Score(CFG).schedule(small_cg())
        eng = ScheduleEngine(CFG)
        r = eng.run(sched)
        reasons = eng.last_dram.by_reason
        assert sum(reasons.values()) == r.dram_bytes
        assert any(k.startswith("chord") for k in reasons)
