"""Tests for repro.core.tensor."""

import pytest

from repro.core.ranks import Rank
from repro.core.tensor import (
    Layout,
    SparseFormat,
    Sparsity,
    TensorSpec,
    csr_tensor,
    dense_tensor,
)


def _mk(m=1000, n=8, wb=4):
    return dense_tensor("T", (Rank("m", m), Rank("n", n)), word_bytes=wb)


class TestDenseTensor:
    def test_shape_and_elements(self):
        t = _mk()
        assert t.shape == (1000, 8)
        assert t.n_elements == 8000

    def test_bytes(self):
        assert _mk().bytes == 8000 * 4
        assert _mk(wb=2).bytes == 8000 * 2

    def test_lines_rounds_up(self):
        t = dense_tensor("T", (Rank("m", 3),), word_bytes=4)  # 12 bytes
        assert t.lines(16) == 1
        assert t.lines(8) == 2

    def test_lines_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _mk().lines(0)

    def test_has_rank(self):
        t = _mk()
        assert t.has_rank("m")
        assert not t.has_rank("k")

    def test_aspect_ratio_and_skew(self):
        assert _mk().aspect_ratio == pytest.approx(125.0)
        assert _mk().is_skewed
        cube = dense_tensor("C", (Rank("a", 64), Rank("b", 64)))
        assert not cube.is_skewed

    def test_unnamed_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec(name="", ranks=(Rank("m", 4),))

    def test_bad_word_size_rejected(self):
        with pytest.raises(ValueError):
            _mk(wb=3)

    def test_no_ranks_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec(name="T", ranks=())


class TestSparseTensor:
    def test_csr_bytes_include_metadata(self):
        # nnz values (4B) + nnz indices (4B) + (M+1) offsets (4B)
        t = csr_tensor("A", (Rank("m", 100), Rank("k", 100)), nnz=500)
        assert t.bytes == 500 * 4 + 500 * 4 + 101 * 4

    def test_csc_uses_column_major_offsets(self):
        t = TensorSpec(
            "A", (Rank("m", 10), Rank("k", 20)),
            sparsity=Sparsity(SparseFormat.CSC, nnz=30),
        )
        assert t.bytes == 30 * 4 + 30 * 4 + 21 * 4

    def test_stored_elements_is_nnz(self):
        t = csr_tensor("A", (Rank("m", 100), Rank("k", 100)), nnz=500)
        assert t.stored_elements == 500

    def test_sparse_requires_nnz(self):
        with pytest.raises(ValueError):
            Sparsity(SparseFormat.CSR)

    def test_negative_nnz_rejected(self):
        with pytest.raises(ValueError):
            Sparsity(SparseFormat.CSR, nnz=-1)

    def test_describe_mentions_format(self):
        t = csr_tensor("A", (Rank("m", 10), Rank("k", 10)), nnz=5)
        assert "csr" in t.describe()
        assert "nnz=5" in t.describe()


class TestLayout:
    def test_flip(self):
        assert Layout.ROW_MAJOR.flipped() is Layout.COL_MAJOR
        assert Layout.COL_MAJOR.flipped() is Layout.ROW_MAJOR
