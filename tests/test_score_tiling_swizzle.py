"""Tests for occupancy tiling, swizzle minimization, search space and
multi-node planning."""

import math

import numpy as np
import pytest

from repro.core.classify import classify_dependencies
from repro.hw.noc import NocConfig
from repro.score.loop_order import natural_loop_order
from repro.score.multinode import compare_noc_traffic, split_dominant_rank
from repro.score.searchspace import (
    chord_design_points,
    compare_search_spaces,
    log10_comb,
    log10_factorial,
    log10_op_by_op_space,
    log10_scratchpad_space,
    log10_slice_allocation,
)
from repro.score.swizzle import choose_all_layouts, choose_layout, total_swizzles
from repro.score.tiling import occupancy_tiles, tile_nnz
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.matrices import FV1


class TestOccupancyTiles:
    def test_covers_all_rows_contiguously(self):
        row_nnz = [3, 1, 4, 1, 5, 9, 2, 6]
        tiles = occupancy_tiles(row_nnz, 3)
        assert tiles[0][0] == 0
        assert tiles[-1][1] == len(row_nnz)
        for (s1, e1), (s2, e2) in zip(tiles, tiles[1:]):
            assert e1 == s2

    def test_balances_nnz(self):
        rng = np.random.default_rng(0)
        row_nnz = rng.integers(0, 20, size=500)
        n_tiles = 8
        tiles = occupancy_tiles(row_nnz, n_tiles)
        counts = tile_nnz(row_nnz, tiles)
        ideal = row_nnz.sum() / n_tiles
        assert max(counts) <= ideal + row_nnz.max() + 1

    def test_single_tile(self):
        assert occupancy_tiles([1, 2, 3], 1) == [(0, 3)]

    def test_more_tiles_than_rows(self):
        tiles = occupancy_tiles([5, 5], 4)
        assert len(tiles) == 4
        assert tiles[0][0] == 0
        assert max(e for _, e in tiles) == 2

    def test_empty_rows(self):
        tiles = occupancy_tiles([], 3)
        assert all(t == (0, 0) for t in tiles)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            occupancy_tiles([1], 0)


class TestSwizzle:
    @pytest.fixture(scope="class")
    def cg(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        cdag = classify_dependencies(dag)
        orders = {op.name: natural_loop_order(op, cdag) for op in dag.ops}
        return dag, orders

    def test_cg_is_swizzle_free(self, cg):
        dag, orders = cg
        layouts = choose_all_layouts(dag, orders, minimize=True)
        assert total_swizzles(layouts) == 0

    def test_skewed_tensors_major_dim_zero(self, cg):
        dag, orders = cg
        layouts = choose_all_layouts(dag, orders)
        for name in ("S@0", "R@1", "P@1", "X@1"):
            assert layouts[name].major_dim == 0

    def test_majority_vote_counts_consumers(self, cg):
        dag, orders = cg
        # S@0 has two consumers, both wanting dim 0.
        choice = choose_layout(dag, "S@0", orders)
        assert choice.swizzled_consumers == ()

    def test_minimization_never_loses(self, cg):
        dag, orders = cg
        minimized = choose_all_layouts(dag, orders, minimize=True)
        raw = choose_all_layouts(dag, orders, minimize=False)
        # Majority vote can only reduce the number of layout transforms.
        assert total_swizzles(minimized) <= total_swizzles(raw)
        assert total_swizzles(minimized) == 0

    def test_raw_swizzles_only_on_rf_small_tensors(self, cg):
        # Without minimization the only disagreements in CG are on the tiny
        # Greek tensors (ties in rank extents), which live in the RF and
        # never stream — the engine does not charge them.
        dag, orders = cg
        raw = choose_all_layouts(dag, orders, minimize=False)
        for name, choice in raw.items():
            if choice.swizzled_consumers:
                assert dag.tensor(name).bytes <= 32 * 1024


class TestSearchSpace:
    def test_log10_comb_matches_math(self):
        assert log10_comb(10, 3) == pytest.approx(math.log10(120))

    def test_log10_factorial(self):
        assert log10_factorial(5) == pytest.approx(math.log10(120))

    def test_slice_allocation_matches_stars_and_bars(self):
        # C(size+4, 4) for 5 tensors.
        size = 100
        expected = math.log10(math.comb(size + 4, 4))
        assert log10_slice_allocation(size, 5) == pytest.approx(expected)

    def test_scratchpad_space_is_astronomical(self):
        size_words = (4 * 1024 * 1024) // 4
        tensors = [size_words] * 5
        lg = log10_scratchpad_space(size_words, tensors, time_steps=4)
        assert lg > 60  # intractable, as Sec. VI-B argues

    def test_scratchpad_scales_with_time_steps(self):
        lg1 = log10_scratchpad_space(1000, [1000] * 3, time_steps=1)
        lg3 = log10_scratchpad_space(1000, [1000] * 3, time_steps=3)
        assert lg3 == pytest.approx(3 * lg1)

    def test_op_by_op_much_smaller_than_dag_level(self):
        size = (4 * 1024 * 1024) // 4
        assert log10_op_by_op_space(size) < log10_scratchpad_space(size, [size] * 5)

    def test_chord_points_are_dag_sized(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=10))
        pts = chord_design_points(dag)
        assert 100 <= pts <= 1000  # the paper's ~1e2 order

    def test_compare_report(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=1))
        rep = compare_search_spaces(dag)
        assert rep.chord_points < 100
        assert rep.log10_scratchpad > rep.log10_op_by_op
        assert "CHORD" in rep.describe()


class TestMultiNode:
    def test_split_covers_extent(self):
        plan = split_dominant_rank("m", 1000, NocConfig(n_nodes=7))
        assert sum(n.extent for n in plan.nodes) == 1000
        assert plan.nodes[0].start == 0
        assert plan.nodes[-1].stop == 1000

    def test_split_is_balanced(self):
        plan = split_dominant_rank("m", 1000, NocConfig(n_nodes=7))
        extents = [n.extent for n in plan.nodes]
        assert max(extents) - min(extents) <= 1

    def test_rank_split_wins_for_skewed_shapes(self):
        c = compare_noc_traffic(m=81920, n=16, n_prime=16, noc=NocConfig(16))
        assert c.advantage > 100  # orders of magnitude (Sec. V-B)

    def test_op_split_scales_with_m(self):
        small = compare_noc_traffic(m=1000, n=16, n_prime=16)
        big = compare_noc_traffic(m=100000, n=16, n_prime=16)
        assert big.advantage > small.advantage

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            split_dominant_rank("m", 0, NocConfig(4))
