"""Docs consistency: intra-repo links resolve and the workload gallery
covers every registry name (same checks CI's docs job runs via
``tools/check_docs.py``)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestDocs:
    def test_intra_repo_links_resolve(self):
        assert _checker().check_links() == []

    def test_gallery_covers_every_registry_workload(self):
        assert _checker().check_workload_coverage() == []

    def test_checker_catches_broken_link(self, tmp_path, monkeypatch):
        mod = _checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "bad.md").write_text("[dead](does/not/exist.md)")
        monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
        errors = mod.check_links()
        assert len(errors) == 1 and "does/not/exist.md" in errors[0]

    def test_checker_catches_missing_workload(self, tmp_path, monkeypatch):
        mod = _checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "workloads.md").write_text("# empty gallery\n")
        monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
        # The registry import falls back to the installed repro package
        # (sys.path already carries src/ under pytest).
        errors = mod.check_workload_coverage()
        assert any("'cg/fv1/N=1'" in e for e in errors)
        assert any("xformer" in e for e in errors)

    def test_checker_rejects_prefix_only_coverage(self, tmp_path, monkeypatch):
        # `cg/fv1/N=1` inside `cg/fv1/N=16` must NOT count as documented.
        mod = _checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "workloads.md").write_text("only `cg/fv1/N=16`\n")
        monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
        errors = mod.check_workload_coverage()
        assert any("'cg/fv1/N=1'" in e for e in errors)
        assert not any("'cg/fv1/N=16'" in e for e in errors)

    def test_every_doc_reachable_from_entry_points(self):
        assert _checker().check_docs_reachable() == []

    def test_checker_catches_orphaned_doc(self, tmp_path, monkeypatch):
        mod = _checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[arch](docs/architecture.md)\n")
        (tmp_path / "docs" / "architecture.md").write_text("# arch\n")
        (tmp_path / "docs" / "orphan.md").write_text("# nobody links here\n")
        monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
        errors = mod.check_docs_reachable()
        assert len(errors) == 1 and "orphan.md" in errors[0]

    def test_key_docs_exist(self):
        for rel in ("README.md", "PAPER.md", "docs/architecture.md",
                    "docs/workloads.md", "docs/extending.md",
                    "docs/tuner.md", "docs/testing.md",
                    "docs/analytic.md"):
            assert (REPO_ROOT / rel).is_file(), rel

    def test_cross_links_present(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/workloads.md" in readme
        assert "docs/extending.md" in readme
        assert "docs/tuner.md" in readme
        assert "docs/testing.md" in readme
        assert "docs/analytic.md" in readme
        arch = (REPO_ROOT / "docs" / "architecture.md").read_text()
        assert "extending.md" in arch and "workloads.md" in arch
        assert "tuner.md" in arch and "testing.md" in arch
        assert "analytic.md" in arch
        tuner = (REPO_ROOT / "docs" / "tuner.md").read_text()
        assert "analytic.md" in tuner
        testing = (REPO_ROOT / "docs" / "testing.md").read_text()
        assert "analytic.md" in testing
        assert "test_analytic_differential.py" in testing
