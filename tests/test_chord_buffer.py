"""Tests for the CHORD buffer: PRELUDE fills, RIFF steals, exact byte
accounting, retirement and the Fig. 11 head-keeping behaviour."""

import pytest

from repro.chord.buffer import ChordBuffer
from repro.chord.hints import ReuseHints, TensorHints
from repro.chord.metadata import RiffIndexTable


def hints(**tensors):
    return ReuseHints({
        name: TensorHints(name, t[0], t[1], tuple(t[2]), t[3])
        for name, t in tensors.items()
    })


class TestPreludeFill:
    def test_tensor_fits_no_traffic(self):
        h = hints(T=(500, 0, [2], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        assert c.resident_bytes("T") == 500
        assert c.stats.dram_bytes == 0

    def test_spill_charges_dram_write(self):
        h = hints(T=(1500, 0, [2], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        assert c.resident_bytes("T") == 1000
        assert c.stats.dram_write_bytes == 500  # dirty tail spilled

    def test_head_is_kept_not_tail(self):
        """PRELUDE keeps the prefix: a subsequent full read hits exactly the
        head bytes (Fig. 9/11 vs LRU keeping the tail)."""
        h = hints(T=(1500, 0, [2], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        hit = c.read("T", 2)
        assert hit == 1000  # the head

    def test_clean_spill_of_refetch_is_free(self):
        h = hints(T=(1500, 0, [2, 4], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)                      # 500 dirty spill
        writes_after_prod = c.stats.dram_write_bytes
        c.read("T", 2)                       # 500 missed, refetched clean
        assert c.stats.dram_read_bytes == 500
        assert c.stats.dram_write_bytes == writes_after_prod  # no new writes


class TestRiffReplacement:
    def test_far_tensor_tail_evicted_for_near_tensor(self):
        h = hints(
            X=(800, 0, [10], False),    # far next use
            R=(800, 1, [2, 3], False),  # near, frequent
        )
        c = ChordBuffer(1000, h)
        c.write("X", 0)
        c.write("R", 1)
        assert c.resident_bytes("R") == 800        # R fully resident
        assert c.resident_bytes("X") == 200        # X lost its tail
        # X was dirty: evicted bytes were written back.
        assert c.stats.dram_write_bytes == 600

    def test_prelude_only_mode_never_steals(self):
        h = hints(
            X=(800, 0, [10], False),
            R=(800, 1, [2, 3], False),
        )
        c = ChordBuffer(1000, h, use_riff=False)
        c.write("X", 0)
        c.write("R", 1)
        assert c.resident_bytes("X") == 800
        assert c.resident_bytes("R") == 200
        assert c.stats.dram_write_bytes == 600     # R's tail spilled

    def test_lower_priority_incoming_spills_directly(self):
        h = hints(
            HOT=(1000, 0, [2], False),
            COLD=(500, 1, [50], False),
        )
        c = ChordBuffer(1000, h)
        c.write("HOT", 0)
        c.write("COLD", 1)
        assert c.resident_bytes("HOT") == 1000
        assert c.resident_bytes("COLD") == 0
        assert c.stats.dram_write_bytes == 500

    def test_multiple_victims_drained_in_priority_order(self):
        h = hints(
            FAR=(400, 0, [30], False),
            MID=(400, 1, [20], False),
            NEW=(1000, 2, [3, 4], False),
        )
        c = ChordBuffer(1000, h)
        c.write("FAR", 0)
        c.write("MID", 1)
        c.write("NEW", 2)
        assert c.resident_bytes("NEW") == 1000
        assert c.resident_bytes("FAR") == 0
        assert c.resident_bytes("MID") == 0


class TestReads:
    def test_cold_read_misses_and_caches(self):
        h = hints(A=(600, None, [1, 2, 3], False))
        c = ChordBuffer(1000, h)
        assert c.read("A", 1) == 0
        assert c.stats.dram_read_bytes == 600
        # Re-inserted clean: the next consumer hits.
        assert c.read("A", 2) == 600
        assert c.stats.dram_read_bytes == 600

    def test_no_reinsert_after_last_use(self):
        h = hints(A=(600, None, [1], False))
        c = ChordBuffer(1000, h)
        c.read("A", 1)
        assert c.resident_bytes("A") == 0

    def test_partial_read(self):
        h = hints(T=(1000, 0, [2], False))
        c = ChordBuffer(400, h)
        c.write("T", 0)
        hit = c.read("T", 2, nbytes=500)
        assert hit == 400
        assert c.stats.misses == 100

    def test_negative_read_rejected(self):
        h = hints(T=(10, 0, [1], False))
        c = ChordBuffer(100, h)
        with pytest.raises(ValueError):
            c.read("T", 0, nbytes=-1)


class TestRetirement:
    def test_dead_intermediate_discarded_without_traffic(self):
        h = hints(T=(500, 0, [1], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        c.read("T", 1)
        c.retire("T")
        assert not c.is_tracked("T")
        assert c.stats.dram_write_bytes == 0

    def test_program_output_drains_on_retire(self):
        h = hints(OUT=(500, 0, [], True))
        c = ChordBuffer(1000, h)
        c.write("OUT", 0)
        c.retire("OUT")
        assert c.stats.dram_write_bytes == 500

    def test_finalize_drains_outputs_only(self):
        h = hints(
            OUT=(300, 0, [], True),
            TMP=(300, 1, [2], False),
        )
        c = ChordBuffer(1000, h)
        c.write("OUT", 0)
        c.write("TMP", 1)
        c.finalize()
        assert c.stats.dram_write_bytes == 300
        assert c.used_bytes == 0

    def test_retire_untracked_is_noop(self):
        h = hints(T=(10, 0, [1], False))
        ChordBuffer(100, h).retire("T")


class TestInvariants:
    def test_capacity_never_exceeded(self):
        h = hints(**{f"T{i}": (400, i, [i + 1, i + 5], False) for i in range(8)})
        c = ChordBuffer(1000, h)
        for i in range(8):
            c.write(f"T{i}", i)
            assert c.used_bytes <= 1000

    def test_resident_never_exceeds_total(self):
        h = hints(T=(500, 0, [1, 2], False))
        c = ChordBuffer(10_000, h)
        c.write("T", 0)
        c.read("T", 1)
        c.read("T", 2)
        assert c.resident_bytes("T") <= 500

    def test_table_capacity_bypasses_gracefully(self):
        h = hints(
            A=(100, 0, [5], False),
            B=(100, 1, [5], False),
            C=(100, 2, [3, 4], False),
        )
        c = ChordBuffer(1000, h, table=RiffIndexTable(2))
        c.write("A", 0)
        c.write("B", 1)
        c.write("C", 2)   # table full: bypasses straight to DRAM
        assert c.resident_bytes("C") == 0
        assert c.stats.dram_write_bytes == 100

    def test_describe_runs(self):
        h = hints(T=(500, 0, [1], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        assert "T" in c.describe()


class TestUsedBytesCounter:
    """``used_bytes`` is an O(1) incrementally-maintained counter; it must
    equal the O(tensors) recomputation after every event kind (fill, RIFF
    steal, refetch, retire, finalize)."""

    def _mixed_hints(self, n=12):
        return hints(**{
            f"T{i}": (200 + 97 * i, i, [i + 2, i + n + 3], i % 5 == 0)
            for i in range(n)
        })

    def test_counter_matches_slow_sum_through_event_storm(self):
        h = self._mixed_hints()
        c = ChordBuffer(2500, h)
        assert __debug__  # the tier-1 suite runs with assertions enabled
        for i in range(12):
            c.write(f"T{i}", i)
            assert c.used_bytes == c.audit_used_bytes()
        for i in range(12):
            c.read(f"T{i}", i + 2)
            assert c.used_bytes == c.audit_used_bytes()
        for i in range(0, 12, 3):
            c.retire(f"T{i}")
            assert c.used_bytes == c.audit_used_bytes()
        c.finalize()
        assert c.used_bytes == c.audit_used_bytes() == 0

    def test_counter_matches_after_partial_reads(self):
        h = hints(T=(1000, 0, [2, 4], False), U=(900, 1, [3], False))
        c = ChordBuffer(1200, h)
        c.write("T", 0)
        c.write("U", 1)          # RIFF steals T's tail
        c.read("T", 2, nbytes=700)
        c.read("U", 3)
        assert c.used_bytes == c.audit_used_bytes()
        assert 0 < c.used_bytes <= 1200


class TestHistoryRecorder:
    def test_history_off_by_default(self):
        h = hints(T=(500, 0, [1], False))
        c = ChordBuffer(1000, h)
        c.write("T", 0)
        c.read("T", 1)
        assert c.history == []

    def test_opt_in_records_samples(self):
        h = hints(T=(500, 0, [1, 2], False))
        c = ChordBuffer(1000, h, record_history=True)
        c.write("T", 0)
        c.read("T", 1)
        assert c.history == [(0, 500), (1, 500)]

    def test_history_stays_bounded(self):
        h = hints(T=(10, 0, list(range(1, 5000)), False))
        c = ChordBuffer(1000, h, record_history=True, history_limit=64)
        c.write("T", 0)
        for i in range(1, 4000):
            c.read("T", i)
        assert len(c.history) < 64
        # Decimation keeps coverage of the whole run, not just a prefix.
        assert c.history[-1][0] > 3000

    def test_invalid_history_limit(self):
        h = hints(T=(10, 0, [1], False))
        with pytest.raises(ValueError):
            ChordBuffer(100, h, record_history=True, history_limit=1)
