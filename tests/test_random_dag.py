"""Tests for the seeded random einsum-DAG generator."""

import pytest

from repro.workloads.random_dag import RandomDagProblem, build_random_dag
from repro.workloads.registry import (
    is_resolvable,
    random_dag_workload,
    resolve_workload,
)


class TestGeneratorValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_dag_of_requested_length(self, seed):
        dag = build_random_dag(RandomDagProblem(seed=seed, n_ops=15))
        assert len(dag) == 15
        # TensorDag.add_op enforced topological validity on construction;
        # spot-check the derived structures are consistent.
        for op in dag.ops:
            for t in op.inputs:
                assert op.name in dag.consumers_of(t.name)
            assert dag.producer_of(op.output.name) == op.name

    @pytest.mark.parametrize("seed", range(8))
    def test_tensor_footprints_are_line_aligned(self, seed):
        dag = build_random_dag(RandomDagProblem(seed=seed, n_ops=12, skew=3))
        for t in dag.tensors:
            assert t.bytes % 16 == 0

    def test_deterministic_per_seed(self):
        p = RandomDagProblem(seed=42, n_ops=10, fanout=3, skew=2)
        assert build_random_dag(p).describe() == build_random_dag(p).describe()

    def test_different_seeds_differ(self):
        a = build_random_dag(RandomDagProblem(seed=0, n_ops=10))
        b = build_random_dag(RandomDagProblem(seed=1, n_ops=10))
        assert a.describe() != b.describe()

    def test_invalid_problems_raise(self):
        with pytest.raises(ValueError):
            RandomDagProblem(n_ops=0)
        with pytest.raises(ValueError):
            RandomDagProblem(fanout=-1)
        with pytest.raises(ValueError):
            RandomDagProblem(skew=-2)


class TestGeneratorDials:
    def test_fanout_zero_is_a_chain(self):
        """With fanout 0 every op consumes the latest tensor — reuse
        frequency of intermediates stays minimal."""
        dag = build_random_dag(RandomDagProblem(seed=3, n_ops=20, fanout=0))
        multi = [t for t in dag.tensors if dag.reuse_frequency(t.name) > 1]
        assert len(multi) <= 2  # contracted partners may repeat at most rarely

    def test_high_fanout_creates_delayed_reuse(self):
        """High fan-out re-reads old tensors: some tensor has several
        consumers, and some reuse distance is long."""
        dag = build_random_dag(RandomDagProblem(seed=3, n_ops=20, fanout=6))
        freqs = [dag.reuse_frequency(t.name) for t in dag.tensors]
        assert max(freqs) >= 3
        distances = [max(dag.reuse_distances(t.name), default=0)
                     for t in dag.tensors]
        assert max(distances) >= 5

    def test_skew_zero_is_uniform(self):
        dag = build_random_dag(RandomDagProblem(seed=5, n_ops=10, skew=0))
        for t in dag.tensors:
            assert t.aspect_ratio == 1.0

    def test_skew_spreads_extents(self):
        dag = build_random_dag(RandomDagProblem(seed=5, n_ops=15, skew=5))
        assert max(t.aspect_ratio for t in dag.tensors) >= 4.0


class TestRegistryIntegration:
    def test_name_round_trips(self):
        w = random_dag_workload(9, n_ops=7, fanout=1, skew=4)
        assert w.name == "rand/s=9/ops=7/f=1/k=4"
        again = resolve_workload(w.name)
        assert again.name == w.name
        assert again.build().describe() == w.build().describe()

    def test_resolvable_but_not_in_documented_matrix(self):
        from repro.workloads.registry import all_workloads

        assert is_resolvable("rand/s=0/ops=12/f=2/k=2")
        assert not any(n.startswith("rand/") for n in all_workloads())

    def test_malformed_names_unresolvable(self):
        assert not is_resolvable("rand/s=1/ops=12")
        assert not is_resolvable("rand/s=x/ops=12/f=2/k=2")
