"""Tracing, latency-histogram and Prometheus-exporter tests.

Three layers, mirroring how the observability tentpole is built:

* **Units** — the log-bucketed :class:`~repro.service.metrics.Histogram`
  (pinned bucket bounds, le-inclusive boundaries, exact mergeability,
  quantile error bounds, and a hypothesis property that merging shard
  histograms equals histogramming the pooled samples), the
  :class:`~repro.service.tracing.SpanContext` wire discipline, and the
  per-point engine phase hook.
* **Rendering** — :func:`~repro.service.promexport.render_prometheus`
  output for both roles, validated by the same stdlib checker CI runs
  (``tools/check_prom.py``), plus an HTTP round-trip against a live
  :class:`~repro.service.promexport.PromExporter`.
* **Loopback e2e** — a traced submission against a real daemon: every
  request-log record of the sweep shares one ``trace_id``, the client
  learns it from ``accepted``/``done``, the latency histograms pick up
  the request, ``--phase-profile`` fills the phase histograms, and an
  untraced client stays byte-identical to protocol v5.
"""

import importlib.util
import io
import json
import math
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.configs import run_config
from repro.hw.config import AcceleratorConfig
from repro.service import (
    DEFAULT_BUCKETS,
    Histogram,
    HistogramFamily,
    PROM_CONTENT_TYPE,
    PromExporter,
    RequestLog,
    ServiceError,
    SpanContext,
    attach_trace,
    parse_trace_fields,
    render_prometheus,
    workload_family,
)
from repro.service.protocol import ProtocolError
from repro.sim import engine as sim_engine
from repro.workloads.registry import resolve_workload
from test_service import (
    BANDWIDTH_GB,
    CONFIGS,
    WORKLOAD,
    ServerThread,
    _reset_runner,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _check_prom():
    """Import ``tools/check_prom.py`` the way ``test_docs`` imports its
    checker — the gate CI runs must be the gate the tests pin."""
    spec = importlib.util.spec_from_file_location(
        "check_prom", REPO_ROOT / "tools" / "check_prom.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


# ---------------------------------------------------------------------------
# Histogram units
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_default_buckets_are_pinned(self):
        """The fabric-wide bounds are wire format: changing them breaks
        mergeability against running shards, so a change must be loud."""
        assert DEFAULT_BUCKETS == (
            0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
            0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 300.0,
        )

    def test_boundaries_are_le_inclusive(self):
        """A value exactly on a bound lands in that bound's bucket —
        matching the Prometheus ``le`` (less-or-equal) convention."""
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)      # on the first bound -> bucket 0
        hist.observe(1.0001)   # just past it       -> bucket 1
        hist.observe(2.0)      # on the second      -> bucket 1
        hist.observe(4.0)      # on the last        -> bucket 2
        assert hist.counts == [1, 2, 1, 0]

    def test_overflow_lands_in_the_implicit_inf_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(2.5)
        assert hist.counts == [0, 0, 1]
        assert hist.count == 1 and hist.sum == pytest.approx(2.5)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=())

    def test_merge_is_bucketwise_addition_and_associative(self):
        def build(values):
            h = Histogram(buckets=(1.0, 2.0, 4.0))
            for v in values:
                h.observe(v)
            return h

        a, b, c = build([0.5, 3.0]), build([1.5]), build([9.0, 0.1])
        left = build([]).merge(a).merge(b).merge(c)
        right = build([]).merge(a).merge(build([]).merge(b).merge(c))
        pooled = build([0.5, 3.0, 1.5, 9.0, 0.1])
        for merged in (left, right):
            assert merged.counts == pooled.counts
            assert merged.count == pooled.count
            assert merged.sum == pytest.approx(pooled.sum)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram(buckets=(1.0, 2.0)).merge(Histogram(buckets=(1.0,)))

    def test_quantile_interpolates_within_the_covering_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(4):
            hist.observe(1.5)  # all mass in the (1, 2] bucket
        # rank q*4 inside a 4-count bucket spanning (1, 2]
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_error_bounded_by_bucket_width(self):
        """The estimate can be off, but never outside the covering
        bucket — the documented error bound of fixed-bucket quantiles."""
        hist = Histogram()  # DEFAULT_BUCKETS
        samples = [0.0007, 0.003, 0.004, 0.018, 0.018, 0.07, 0.4, 1.7]
        for v in samples:
            hist.observe(v)
        for q in (0.5, 0.9, 0.99):
            # the covering bucket holds the ceil(q*n)-th ranked sample
            exact = sorted(samples)[math.ceil(q * len(samples)) - 1]
            i = next(j for j, b in enumerate(DEFAULT_BUCKETS) if exact <= b)
            lo = DEFAULT_BUCKETS[i - 1] if i else 0.0
            assert lo <= hist.quantile(q) <= DEFAULT_BUCKETS[i]

    def test_quantile_edge_cases(self):
        empty = Histogram(buckets=(1.0, 2.0))
        assert empty.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            empty.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            empty.quantile(1.5)
        overflow = Histogram(buckets=(1.0, 2.0))
        overflow.observe(50.0)
        assert overflow.quantile(0.99) == 2.0  # clamps to the last bound

    def test_snapshot_round_trips(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(9.0)
        snap = json.loads(json.dumps(hist.snapshot()))  # wire-safe
        back = Histogram.from_snapshot(snap)
        assert back.bounds == hist.bounds
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.sum == pytest.approx(hist.sum)
        with pytest.raises(ValueError, match="counts"):
            Histogram.from_snapshot({**snap, "counts": [1]})

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                                       allow_nan=False),
                             max_size=30),
                    min_size=1, max_size=5))
    def test_merging_shards_equals_histogramming_the_pool(self, shards):
        """The load-bearing property: per-shard histograms merged at the
        gateway are indistinguishable from one histogram fed every
        sample — counts exactly, sum to float tolerance."""
        merged = Histogram()
        for samples in shards:
            shard = Histogram()
            for v in samples:
                shard.observe(v)
            merged.merge(shard)
        pooled = Histogram()
        for v in (v for samples in shards for v in samples):
            pooled.observe(v)
        assert merged.counts == pooled.counts
        assert merged.count == pooled.count
        assert merged.sum == pytest.approx(pooled.sum)


class TestHistogramFamily:
    def test_series_materialise_per_label_tuple(self):
        fam = HistogramFamily(("op", "family", "priority"))
        fam.observe(("sweep", "cg", "bulk"), 0.2)
        fam.observe(("sweep", "cg", "bulk"), 0.3)
        fam.observe(("ping", "-", "-"), 0.001)
        items = dict(fam.items())
        assert set(items) == {("sweep", "cg", "bulk"), ("ping", "-", "-")}
        assert items[("sweep", "cg", "bulk")].count == 2

    def test_label_arity_is_enforced(self):
        fam = HistogramFamily(("op",))
        with pytest.raises(ValueError, match="expected 1 labels"):
            fam.observe(("sweep", "extra"), 0.1)

    def test_snapshot_and_merged_by_round_trip(self):
        fam = HistogramFamily(("op", "family"))
        fam.observe(("sweep", "cg"), 0.2)
        fam.observe(("sweep", "mg"), 0.4)
        fam.observe(("tune", "cg"), 1.0)
        snap = json.loads(json.dumps(fam.snapshot()))
        assert snap["labels"] == ["op", "family"]
        assert set(snap["series"]) == {"sweep|cg", "sweep|mg", "tune|cg"}
        by_op = HistogramFamily.merged_by(snap, "op")
        assert by_op["sweep"].count == 2
        assert by_op["tune"].count == 1
        by_family = HistogramFamily.merged_by(snap, "family")
        assert by_family["cg"].count == 2


# ---------------------------------------------------------------------------
# Tracing units
# ---------------------------------------------------------------------------

class TestSpanContext:
    def test_new_root_mints_wire_format_ids(self):
        root = SpanContext.new_root()
        assert len(root.trace_id) == 16
        assert len(root.span_id) == 8
        int(root.trace_id, 16) and int(root.span_id, 16)  # hex or raise
        assert root.parent_span is None

    def test_child_links_to_the_caller_span(self):
        root = SpanContext.new_root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span == root.span_id
        assert child.span_id != root.span_id

    def test_anonymous_caller_yields_a_parentless_child(self):
        """A trace_id-only request (no span_id) makes the receiver the
        recorded root — parent omitted, not an empty string."""
        child = SpanContext("ab" * 8, "").child()
        assert child.parent_span is None
        assert "parent_span" not in child.log_fields()

    def test_log_fields_omit_parent_at_the_root(self):
        root = SpanContext("ab" * 8, "cd" * 4)
        assert root.log_fields() == {"trace_id": "ab" * 8,
                                     "span_id": "cd" * 4}
        hop = root.child()
        assert hop.log_fields() == {"trace_id": "ab" * 8,
                                    "span_id": hop.span_id,
                                    "parent_span": "cd" * 4}


class TestWireTraceFields:
    def test_attach_none_leaves_the_request_untouched(self):
        """The v5 byte-identity guarantee at its source: an untraced
        request gains no keys at all."""
        req = {"type": "sweep", "workloads": ["cg/*"]}
        before = json.dumps(req, sort_keys=True)
        assert attach_trace(req, None) is req
        assert json.dumps(req, sort_keys=True) == before

    def test_attach_stamps_the_senders_span(self):
        ctx = SpanContext("ab" * 8, "cd" * 4, parent_span="ef" * 4)
        req = attach_trace({"type": "sweep"}, ctx)
        # the parent never travels: receivers derive linkage by minting
        # a child of the *sender's* span id
        assert req == {"type": "sweep", "trace_id": "ab" * 8,
                       "span_id": "cd" * 4}

    def test_parse_absent_fields_returns_none(self):
        assert parse_trace_fields({"type": "ping"}) is None

    def test_parse_round_trips_attached_fields(self):
        ctx = SpanContext.new_root()
        caller = parse_trace_fields(attach_trace({"type": "sweep"}, ctx))
        assert caller == SpanContext(ctx.trace_id, ctx.span_id)

    def test_parse_accepts_a_trace_id_only(self):
        caller = parse_trace_fields({"trace_id": "ab" * 8})
        assert caller is not None
        assert caller.span_id == ""

    def test_parse_rejects_malformed_fields(self):
        with pytest.raises(ProtocolError, match="requires a 'trace_id'"):
            parse_trace_fields({"span_id": "cd" * 4})
        for bad in ("UPPER", "not hex!", "", 7, "a" * 65):
            with pytest.raises(ProtocolError, match="hex"):
                parse_trace_fields({"trace_id": bad})
            with pytest.raises(ProtocolError, match="hex"):
                parse_trace_fields({"trace_id": "ab" * 8, "span_id": bad})

    def test_workload_family_labels(self):
        assert workload_family(["cg/fv1/N=16"]) == "cg"
        assert workload_family(["cg/fv1/N=16", "cg/fv2/N=4"]) == "cg"
        assert workload_family(["cg/fv1/N=16", "mg/fv1/N=1"]) == "multi"
        assert workload_family([]) == "-"


# ---------------------------------------------------------------------------
# Engine phase profiling
# ---------------------------------------------------------------------------

class TestPhaseHook:
    def test_engines_emit_named_phases_when_hooked(self):
        """With a hook installed, the cache engine splits trace-gen from
        kernel replay and the schedule engine reports chord accounting;
        with no hook, engine runs pay nothing and emit nothing."""
        seen = {}
        sim_engine.set_phase_hook(
            lambda phase, s: seen.setdefault(phase, []).append(s))
        try:
            workload = resolve_workload(WORKLOAD)
            dag = workload.build()
            run_config("Flex+LRU", dag, AcceleratorConfig(),
                       workload_name=workload.name)
            run_config("CELLO", dag, AcceleratorConfig(),
                       workload_name=workload.name)
        finally:
            sim_engine.set_phase_hook(None)
        assert set(seen) == {"trace-gen", "cache-kernel",
                             "chord-accounting"}
        assert all(s >= 0.0 for timings in seen.values() for s in timings)
        assert sim_engine.get_phase_hook() is None


# ---------------------------------------------------------------------------
# Prometheus rendering and the exporter
# ---------------------------------------------------------------------------

def _shard_metrics_msg():
    latency = HistogramFamily(("op", "family", "priority"))
    latency.observe(("sweep", "cg", "bulk"), 0.2)
    latency.observe(("ping", "-", "-"), 0.0002)
    phases = HistogramFamily(("phase",))
    phases.observe(("trace-gen",), 0.01)
    phases.observe(("cache-kernel",), 0.03)
    return {
        "type": "metrics", "role": "shard", "server": "repro-service",
        "protocol": 6, "uptime_s": 12.5, "points_streamed": 3,
        "simulations": 2, "hits_total": 1, "coalesced_total": 0,
        "shed_total": 1, "queue_depth": 0, "max_pending": 1024,
        "in_flight": 0, "queue_clients": {"tenant-a": 2},
        "jobs": {"done": 2, "running": 1},
        "rates": {"sims_per_s": 0.5, "points_per_s": 1.5,
                  "analytic_evals_per_s": 0.0, "window_s": 60.0},
        "store": {"entries": 2, "hits": 1, "misses": 2,
                  "hit_rate": 1 / 3, "corrupt": 0},
        "latency": latency.snapshot(), "phases": phases.snapshot(),
    }


def _gateway_metrics_msg():
    latency = HistogramFamily(("op", "family", "priority"))
    latency.observe(("sweep", "multi", "interactive"), 1.2)
    return {
        "type": "metrics", "role": "gateway", "server": "repro-gateway",
        "protocol": 6, "uptime_s": 99.0, "points_streamed": 16,
        "requeued_total": 3, "shards_healthy": 2, "shards_total": 3,
        "jobs": {"done": 4},
        "rates": {"points_per_s": 2.0, "window_s": 60.0},
        "shards": [
            {"id": "s0", "healthy": True, "deaths": 0, "requeued": 0},
            {"id": "s1", "healthy": False, "deaths": 1, "requeued": 3},
            {"id": "s2", "healthy": True, "deaths": 0, "requeued": 0},
        ],
        "latency": latency.snapshot(),
    }


class TestRenderPrometheus:
    def test_shard_exposition_passes_the_ci_checker(self):
        text = render_prometheus(_shard_metrics_msg())
        assert _check_prom().check_text(text, "shard") == []
        assert '# TYPE repro_request_duration_seconds histogram' in text
        assert 'le="+Inf"' in text
        assert 'repro_request_duration_seconds_bucket{op="sweep",' \
               'family="cg",priority="bulk",le="0.25"} 1' in text
        assert 'repro_phase_duration_seconds_count{phase="trace-gen"} 1' \
            in text
        assert "repro_simulations_total 2" in text
        assert 'repro_queue_client_depth{client="tenant-a"} 2' in text

    def test_gateway_exposition_passes_the_ci_checker(self):
        text = render_prometheus(_gateway_metrics_msg())
        assert _check_prom().check_text(text, "gateway") == []
        assert 'repro_shard_healthy{shard="s1"} 0' in text
        assert 'repro_shard_requeued_total{shard="s1"} 3' in text
        assert "repro_requeued_points_total 3" in text
        assert "repro_request_duration_seconds_sum" in text

    def test_bucket_counts_are_cumulative_and_counted(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            hist.observe(v)
        fam = {"labels": ["op"], "series": {"sweep": hist.snapshot()}}
        text = render_prometheus({"role": "shard", "latency": fam})
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_request_duration_seconds")]
        assert lines == [
            'repro_request_duration_seconds_bucket{op="sweep",le="1.0"} 1',
            'repro_request_duration_seconds_bucket{op="sweep",le="2.0"} 2',
            'repro_request_duration_seconds_bucket{op="sweep",le="+Inf"} 3',
            'repro_request_duration_seconds_sum{op="sweep"} 11.0',
            'repro_request_duration_seconds_count{op="sweep"} 3',
        ]

    def test_checker_rejects_broken_expositions(self):
        """The gate must actually gate: feed it the failure modes it
        exists to catch."""
        check_text = _check_prom().check_text
        assert check_text("repro_x 1\n") != []           # no TYPE
        assert check_text("# TYPE repro_x counter\nrepro_x -1\n") != []
        bad_hist = ('# TYPE h histogram\n'
                    'h_bucket{le="1.0"} 5\nh_bucket{le="+Inf"} 3\n'
                    'h_sum 1\nh_count 3\n')
        assert any("cumulative" in p for p in check_text(bad_hist))
        no_inf = ('# TYPE h histogram\n'
                  'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in p for p in check_text(no_inf))
        assert check_text("not a sample line at all\n") != []


class TestPromExporter:
    def test_http_round_trip_and_404(self):
        exporter = PromExporter(_shard_metrics_msg, port=0)
        port = exporter.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROM_CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert _check_prom().check_text(body, "http") == []
            assert "repro_role_info" in body
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/other", timeout=10)
            assert excinfo.value.code == 404
        finally:
            exporter.stop()

    def test_snapshot_failure_is_a_503_not_a_crash(self):
        def boom():
            raise RuntimeError("loop is gone")

        exporter = PromExporter(boom, port=0)
        port = exporter.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10)
            assert excinfo.value.code == 503
        finally:
            exporter.stop()


# ---------------------------------------------------------------------------
# Loopback end-to-end: one daemon, traced and untraced clients
# ---------------------------------------------------------------------------

class TestTracedLoopback:
    @pytest.fixture
    def traced_server(self, tmp_path):
        _reset_runner()
        stream = io.StringIO()
        server = ServerThread(cache_dir=str(tmp_path / "cache"),
                              request_log=RequestLog(stream),
                              prom_port=0, phase_profile=True)
        with server as srv:
            yield srv, stream
        _reset_runner()

    def _records(self, stream):
        return [json.loads(line) for line in
                stream.getvalue().splitlines() if line]

    def test_traced_submit_threads_one_trace_id_through_the_daemon(
            self, traced_server):
        srv, stream = traced_server
        with srv.client(client_id="tracer", trace=True) as client:
            outcome = client.submit_sweep([WORKLOAD], configs=list(CONFIGS),
                                          bandwidth_gb=list(BANDWIDTH_GB))
            # the done message taught the client its trace id (each
            # later request() mints a fresh trace, so capture it now)
            assert outcome.trace_id == client.last_trace_id
            assert outcome.trace_id is not None
            client.ping()
            metrics = client.metrics()

        records = self._records(stream)
        by_op = {r["op"]: r for r in records}
        sweep = by_op["sweep"]
        assert sweep["trace_id"] == outcome.trace_id
        # the daemon minted its own span under the client's root
        assert len(sweep["span_id"]) == 8
        assert len(sweep["parent_span"]) == 8
        assert sweep["span_id"] != sweep["parent_span"]
        assert sweep["outcome"] == "done"
        assert sweep["duration_s"] >= 0.0
        # query ops are traced too (each request() call is a new trace)
        assert "trace_id" in by_op["ping"]
        assert by_op["ping"]["parent_span"] != sweep["parent_span"]

        # the sweep landed in the latency histograms under its family
        by_opname = HistogramFamily.merged_by(metrics["latency"], "op")
        assert by_opname["sweep"].count == 1
        series = metrics["latency"]["series"]
        assert any(key.startswith("sweep|cg|") for key in series)
        # ... and --phase-profile decomposed the simulations
        phase_names = set(
            HistogramFamily.merged_by(metrics["phases"], "phase"))
        assert "chord-accounting" in phase_names

        # the same snapshot scrapes cleanly over --prom-port
        with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.service.prom_port}/metrics",
                timeout=10) as resp:
            body = resp.read().decode("utf-8")
        assert _check_prom().check_text(body, "scrape") == []
        assert "repro_request_duration_seconds_bucket" in body
        assert "repro_phase_duration_seconds_bucket" in body

    def test_untraced_client_leaves_no_trace_fields(self, traced_server):
        srv, stream = traced_server
        with srv.client(client_id="plain") as client:
            outcome = client.submit_sweep([WORKLOAD], configs=list(CONFIGS),
                                          bandwidth_gb=list(BANDWIDTH_GB))
        assert outcome.trace_id is None
        assert client.last_trace_id is None
        for record in self._records(stream):
            assert "trace_id" not in record
            assert "span_id" not in record

    def test_malformed_trace_fields_get_a_typed_error(self, traced_server):
        srv, _ = traced_server
        with srv.client() as client:
            with pytest.raises(ServiceError, match="hex"):
                client.request({"op": "sweep",
                                "workloads": [WORKLOAD],
                                "configs": list(CONFIGS),
                                "trace_id": "NOT-HEX"})
