"""Tests for the orchestrator: sweep specs, parallel execution, and the
persistent result store."""

import json

import pytest

from repro.baselines import runner
from repro.hw.config import MIB, AcceleratorConfig
from repro.orchestrator import (
    ResultStore,
    SweepPoint,
    SweepSpec,
    prewarm,
    result_key,
    run_points,
    run_sweep,
)
from repro.orchestrator import store as store_mod
from repro.sim.results import SimResult
from repro.workloads.matrices import FV1
from repro.workloads.registry import all_workloads, cg_workload, resolve_workload

CFG = AcceleratorConfig()

#: Tiny but real sweep: 2-iteration CG, two block widths, two configs.
SPEC = SweepSpec(
    workloads=("cg/fv1/N=1@it2", "cg/fv1/N=16@it2"),
    configs=("Flexagon", "CELLO"),
)


@pytest.fixture(autouse=True)
def _fresh_runner_state():
    runner.clear_cache()
    runner.reset_simulation_count()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


def sample_result() -> SimResult:
    return SimResult(
        config="CELLO", workload="cg/fv1/N=1", total_macs=123456,
        dram_read_bytes=1000, dram_write_bytes=200,
        compute_s=1e-5, memory_s=2e-5,
        onchip_accesses={"chord": 42, "rf": 7},
    )


class TestSimResultRoundTrip:
    def test_to_from_dict_identity(self):
        r = sample_result()
        assert SimResult.from_dict(r.to_dict()) == r

    def test_survives_json(self):
        r = sample_result()
        assert SimResult.from_dict(json.loads(json.dumps(r.to_dict()))) == r

    def test_missing_onchip_defaults_empty(self):
        d = sample_result().to_dict()
        del d["onchip_accesses"]
        assert SimResult.from_dict(d).onchip_accesses == {}


class TestResolveWorkload:
    def test_round_trips_every_registered_name(self):
        for name in all_workloads():
            assert resolve_workload(name).name == name

    def test_iteration_suffix(self):
        w = resolve_workload("cg/fv1/N=4@it3")
        assert w.name == "cg/fv1/N=4@it3"
        assert w.family == "cg"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("madeup/thing")
        with pytest.raises(KeyError):
            resolve_workload("cg/not_a_matrix/N=1")


class TestSweepSpec:
    def test_pattern_expansion(self):
        spec = SweepSpec(workloads=("gnn/*",), configs=("CELLO",))
        assert [p.workload for p in spec.points()] == ["gnn/cora", "gnn/protein"]

    def test_literal_unmatched_name_kept(self):
        spec = SweepSpec(workloads=("cg/fv1/N=1@it2",), configs=("CELLO",))
        assert [p.workload for p in spec.points()] == ["cg/fv1/N=1@it2"]

    def test_cfg_variants_cross_product(self):
        spec = SweepSpec(
            workloads=("gnn/cora",), configs=("CELLO",),
            sram_bytes=(1 * MIB, 4 * MIB), bandwidths=(250e9, 1000e9),
        )
        assert len(spec.points()) == 4
        srams = {p.cfg.sram_bytes for p in spec.points()}
        assert srams == {1 * MIB, 4 * MIB}

    def test_bandwidth_variants_share_traffic_key(self):
        spec = SweepSpec(
            workloads=("gnn/cora",), configs=("CELLO",),
            bandwidths=(250e9, 1000e9),
        )
        keys = {p.key() for p in spec.points()}
        assert len(spec.points()) == 2 and len(keys) == 1


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        serial = run_sweep(SPEC, jobs=1)
        runner.clear_cache()
        parallel = run_sweep(SPEC, jobs=2)
        assert serial == parallel

    def test_prewarm_counts_and_caches(self):
        n = prewarm(SPEC.points(), jobs=2)
        assert n == len(SPEC.points())
        assert runner.simulation_count() == n
        # Everything is cached now: replay simulates nothing.
        run_sweep(SPEC, jobs=1)
        assert runner.simulation_count() == n

    def test_prewarm_skips_unresolvable(self):
        bogus = SweepPoint("not/registered", "CELLO", CFG)
        assert prewarm([bogus], jobs=2) == 0

    def test_run_points_rejects_unresolvable(self):
        with pytest.raises(KeyError):
            run_points([SweepPoint("not/registered", "CELLO", CFG)], jobs=1)

    def test_run_matrix_parallel_matches_serial(self):
        w = cg_workload(FV1, n=1, iterations=2)
        serial = runner.run_matrix([w], configs=("Flexagon", "CELLO"), jobs=1)
        runner.clear_cache()
        parallel = runner.run_matrix([w], configs=("Flexagon", "CELLO"), jobs=2)
        assert serial == parallel


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key("CELLO", "cg/fv1/N=1", CFG, None)
        r = sample_result()
        store.put(key, r)
        assert store.get(key) == r
        assert store.hits == 1

    def test_persists_across_instances(self, tmp_path):
        key = result_key("CELLO", "cg/fv1/N=1", CFG, None)
        ResultStore(tmp_path).put(key, sample_result())
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(key) == sample_result()

    def test_miss_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(result_key("CELLO", "none", CFG, None)) is None
        assert store.misses == 1

    def test_schema_bump_invalidates(self, tmp_path):
        key = result_key("CELLO", "cg/fv1/N=1", CFG, None)
        ResultStore(tmp_path, schema_version=1).put(key, sample_result())
        bumped = ResultStore(tmp_path, schema_version=2)
        assert len(bumped) == 0
        assert bumped.stale == 1
        assert bumped.get(key) is None

    def test_clear_removes_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result_key("CELLO", "cg/fv1/N=1", CFG, None), sample_result())
        store.save_stats()
        assert store.clear() == 1
        assert not store.path.exists() and not store.stats_path.exists()
        assert len(ResultStore(tmp_path)) == 0

    def test_torn_trailing_line_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(result_key("CELLO", "cg/fv1/N=1", CFG, None), sample_result())
        with store.path.open("a") as fh:
            fh.write('{"v": 1, "key": [truncated')
        assert len(ResultStore(tmp_path)) == 1

    def test_warm_store_means_zero_simulations(self, tmp_path):
        runner.set_store(ResultStore(tmp_path))
        run_sweep(SPEC, jobs=2)
        first = runner.simulation_count()
        assert first == len(SPEC.points())
        # Fresh process-local state, same disk: everything replays.
        runner.clear_cache()
        runner.reset_simulation_count()
        runner.set_store(ResultStore(tmp_path))
        run_sweep(SPEC, jobs=2)
        assert runner.simulation_count() == 0
        assert runner.get_store().misses == 0

    def test_unwritable_location_degrades_to_memory(self, tmp_path, capsys):
        blocked = tmp_path / "file"
        blocked.write_text("not a directory")
        store = ResultStore(blocked / "nested")
        key = result_key("CELLO", "cg/fv1/N=1", CFG, None)
        store.put(key, sample_result())          # must not raise
        store.save_stats()                       # must not raise
        assert store.get(key) == sample_result()  # in-memory tier still works
        assert "unwritable" in capsys.readouterr().err

    def test_stats_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.hits, store.misses, store.simulations = 3, 2, 2
        store.save_stats()
        stats = ResultStore(tmp_path).load_stats()
        assert stats["last_run"] == {"hits": 3, "misses": 2, "simulations": 2}
        described = ResultStore(tmp_path).describe()
        assert "3 hits" in described


class TestCliIntegration:
    def test_sweep_and_cache_commands(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        argv = ["sweep", "--workloads", "cg/fv1/N=1@it2",
                "--configs", "Flexagon,CELLO", "--jobs", "2",
                "--cache-dir", cache]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "CELLO" in out and "Sweep: 2 points" in out

        assert main(["cache", "stat", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries:        2" in out
        assert "2 misses" in out and "2 simulations" in out

        # Second, warm run: zero misses / zero simulations.
        runner.clear_cache()
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stat", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out and "0 simulations" in out

        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "cleared 2" in capsys.readouterr().out

    def test_experiment_honours_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
        assert main(["fig2", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "unused").exists()

    def test_unknown_sweep_config_errors(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--configs", "NotAConfig"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_unknown_sweep_workload_errors(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--workloads", "totally/bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "gnn/cora" in err


class TestOrchestratorPool:
    """The resident pool behind the service daemon (and its fallbacks)."""

    def test_serial_pool_declines_work(self):
        from repro.orchestrator import OrchestratorPool

        with OrchestratorPool(jobs=1) as pool:
            assert pool.warm() is False
            assert pool.run_payloads(
                [("cg/fv1/N=1@it2", "CELLO", CFG, None)]) is None
            assert pool.snapshot()["batches"] == 0

    def test_pool_reused_across_batches(self):
        from repro.orchestrator import OrchestratorPool

        points = [SweepPoint("cg/fv1/N=1@it2", c, CFG)
                  for c in ("Flexagon", "CELLO")]
        with OrchestratorPool(jobs=2) as pool:
            if not pool.warm():
                pytest.skip("no process-pool support in this sandbox")
            assert prewarm(points[:1], pool=pool) == 1
            assert prewarm(points, pool=pool) == 1  # only the uncached one
            snap = pool.snapshot()
            assert snap["batches"] == 2 and snap["payloads"] == 2
            assert not snap["broken"]
        # Pool-dispatched results equal direct serial simulation.
        parallel = [runner.run_workload_config(
            resolve_workload(p.workload), p.config, p.cfg) for p in points]
        runner.clear_cache()
        serial = [runner.run_workload_config(
            resolve_workload(p.workload), p.config, p.cfg) for p in points]
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        from repro.orchestrator import OrchestratorPool
        from repro.orchestrator import parallel as parallel_mod

        pool = OrchestratorPool(jobs=2)
        monkeypatch.setattr(
            OrchestratorPool, "_ensure",
            lambda self: (_ for _ in ()).throw(OSError("no forks here")))
        # Each infrastructure failure counts a strike; prewarm still
        # completes serially every time.
        assert pool.warm() is False
        assert pool.strikes == 1 and not pool.broken
        points = [SweepPoint("cg/fv1/N=1@it2", "CELLO", CFG)]
        assert prewarm(points, pool=pool) == 1
        assert runner.simulation_count() == 1
        assert pool.strikes == 2 and not pool.broken
        # The third strike retires the pool to the serial path for good.
        assert pool.warm() is False
        assert pool.broken
        runner.clear_cache()
        assert prewarm(points, pool=pool) == 1  # still works, serially

    def test_shared_pool_routes_prewarm(self):
        from repro.orchestrator import (
            OrchestratorPool,
            get_shared_pool,
            set_shared_pool,
        )

        assert get_shared_pool() is None
        pool = OrchestratorPool(jobs=2)
        set_shared_pool(pool)
        try:
            assert get_shared_pool() is pool
            points = [SweepPoint("cg/fv1/N=1@it2", c, CFG)
                      for c in ("Flexagon", "CELLO")]
            # jobs=1 call still routes through the installed shared pool
            # (or its serial fallback when pools are unavailable).
            assert prewarm(points, jobs=1) == 2
            assert runner.peek(points[0].key()) is not None
        finally:
            set_shared_pool(None)
            pool.close()
        assert get_shared_pool() is None
