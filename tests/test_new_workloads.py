"""Tests for the extension workload families (transformer, GMRES,
multigrid): golden Algorithm-2 classifications pinned from hand-derived
dominance letters, registry round-trips, and the ext experiment."""

import pickle

import pytest

from repro.core.classify import DependencyType, classify_dependencies
from repro.core.dominance import Dominance
from repro.hw.config import MIB, AcceleratorConfig
from repro.workloads.gmres import GmresProblem, build_gmres_dag, gmres_ops_per_restart
from repro.workloads.matrices import FV1, NASA4704, SHALLOW_WATER1
from repro.workloads.multigrid import (
    MultigridProblem,
    build_multigrid_dag,
    multigrid_ops_per_cycle,
)
from repro.workloads.registry import (
    all_ext_workloads,
    all_workloads,
    gmres_workload,
    is_resolvable,
    multigrid_workload,
    resolve_workload,
    transformer_workload,
)
from repro.workloads.transformer import (
    TransformerProblem,
    build_transformer_dag,
    transformer_ops_per_block,
)

SEQ = DependencyType.SEQUENTIAL
PIPE = DependencyType.PIPELINEABLE
HOLD = DependencyType.DELAYED_HOLD
WB = DependencyType.DELAYED_WRITEBACK


def _dep(cdag, src, dst, tensor):
    return cdag.dependency[(src, dst, tensor)]


class TestTransformerDag:
    @pytest.fixture(scope="class")
    def cdag(self):
        return classify_dependencies(build_transformer_dag())

    def test_op_count(self):
        assert len(build_transformer_dag()) == 1 + transformer_ops_per_block()
        two = TransformerProblem(blocks=2)
        assert len(build_transformer_dag(two)) == 1 + 2 * transformer_ops_per_block()

    def test_all_nodes_balanced(self, cdag):
        # Hand-derived Algorithm-2 letters: with seq = d_model = 512,
        # d_head = 64 and d_ff = 2048 no rank beats the others by the
        # 8x dominance ratio, so every node is "bal" (like the ResNet
        # convs in Fig. 7) and the whole main path can pipeline.
        for name in cdag.dag.op_names:
            assert cdag.dominance[name].kind is Dominance.BALANCED, name

    def test_golden_summary(self, cdag):
        assert cdag.summary() == {
            "sequential": 0,
            "pipelineable": 14,
            "delayed_hold": 3,
            "delayed_writeback": 0,
        }

    def test_two_skip_distances_are_delayed_hold(self, cdag):
        # Skip #1: block input held across the whole 8-op attention path.
        assert _dep(cdag, "pre:embed", "add:res1@0", "X@0") is HOLD
        # Skip #2: residual stream held across the two FFN GEMMs.
        assert _dep(cdag, "add:res1@0", "add:res2@0", "Y@0") is HOLD
        # The two holds span different distances (the multi-distance
        # generalisation of the single ResNet skip).
        d1 = cdag.dag.op_index("add:res1@0") - cdag.dag.op_index("pre:embed")
        d2 = cdag.dag.op_index("add:res2@0") - cdag.dag.op_index("add:res1@0")
        assert d1 > d2 > 1

    def test_softmax_broadcast_holds_scores(self, cdag):
        assert _dep(cdag, "s:scores@0", "sm:softmax@0", "S@0") is HOLD
        assert _dep(cdag, "s:scores@0", "n:normsum@0", "S@0") is PIPE
        assert _dep(cdag, "n:normsum@0", "sm:softmax@0", "Nrm@0") is PIPE

    def test_block_input_multicasts(self, cdag):
        # X feeds q/k/v directly (plus the transitive residual edge).
        assert cdag.parallel_multicast["pre:embed"]
        assert cdag.numcast["pre:embed"] == 3

    def test_stacked_blocks_chain(self):
        dag = build_transformer_dag(TransformerProblem(blocks=2))
        assert set(dag.consumers_of("X@1")) == {
            "q:proj@1", "k:proj@1", "v:proj@1", "add:res1@1"
        }

    def test_word_size_is_16bit(self):
        dag = build_transformer_dag()
        assert dag.tensor("X@0").word_bytes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformerProblem(seq=0)
        with pytest.raises(ValueError):
            TransformerProblem(d_ff=-1)


class TestGmresDag:
    @pytest.fixture(scope="class")
    def cdag(self):
        p = GmresProblem(matrix=NASA4704, m=3, n=1, restarts=1)
        return classify_dependencies(build_gmres_dag(p))

    def test_op_count(self):
        for m, rs in ((3, 1), (4, 2)):
            p = GmresProblem(matrix=FV1, m=m, n=1, restarts=rs)
            assert len(build_gmres_dag(p)) == gmres_ops_per_restart(m) * rs

    def test_golden_summary(self, cdag):
        # Hand-derived for m=3, one restart: the Gram ops are "C"
        # (contracted over M), SpMM/orthogonalize are "U", and every
        # basis re-read crosses a Gram node or the unshared SpMM
        # hand-off, so the basis traffic is all delayed-writeback.
        assert cdag.summary() == {
            "sequential": 10,
            "pipelineable": 5,
            "delayed_hold": 0,
            "delayed_writeback": 18,
        }

    def test_gram_nodes_contracted_dominant(self, cdag):
        for j in range(3):
            assert cdag.dominance[f"h:gram@0.{j}"].kind is Dominance.CONTRACTED
            assert cdag.dominance[f"w:spmm@0.{j}"].kind is Dominance.UNCONTRACTED

    def test_spmm_streams_into_gram(self, cdag):
        # The one adjacent pipeline, exactly like CG's line 1 -> 2a.
        for j in range(3):
            assert _dep(cdag, f"w:spmm@0.{j}", f"h:gram@0.{j}", f"W@0.{j}") is PIPE

    def test_growing_basis_rereads_are_writeback(self, cdag):
        # V_0 is re-read by every later Arnoldi step and the final
        # update — all delayed-writeback (the LRU-adversarial pattern).
        for j in range(3):
            assert _dep(cdag, "r0:res@0", f"h:gram@0.{j}", "V@0.0") is WB
            assert _dep(cdag, "r0:res@0", f"o:orth@0.{j}", "V@0.0") is WB
        assert _dep(cdag, "r0:res@0", "x:upd@0", "V@0.0") is WB

    def test_reuse_frequency_grows_toward_early_vectors(self, cdag):
        dag = cdag.dag
        freqs = [dag.reuse_frequency(f"V@0.{i}") for i in range(4)]
        # 2(m - i) + 2 consumers for i < m; the last vector only feeds
        # the solution update.
        assert freqs == [8, 6, 4, 1]

    def test_small_solve_edges_sequential(self, cdag):
        assert _dep(cdag, "h:gram@0.2", "ls:lstsq@0", "H@0.2") is SEQ
        assert _dep(cdag, "ls:lstsq@0", "x:upd@0", "Yc@0") is SEQ

    def test_validation(self):
        with pytest.raises(ValueError):
            GmresProblem(matrix=FV1, m=0)
        with pytest.raises(ValueError):
            GmresProblem(matrix=FV1, restarts=0)


class TestMultigridDag:
    @pytest.fixture(scope="class")
    def cdag(self):
        p = MultigridProblem(matrix=FV1, n=1, cycles=1)
        return classify_dependencies(build_multigrid_dag(p))

    def test_op_count(self):
        for cycles in (1, 2):
            p = MultigridProblem(matrix=FV1, cycles=cycles)
            assert len(build_multigrid_dag(p)) == multigrid_ops_per_cycle(p.nu) * cycles

    def test_coarse_shapes(self):
        p = MultigridProblem(matrix=FV1)
        assert p.coarse_m == FV1.m // 4
        dag = build_multigrid_dag(p)
        assert dag.tensor("RC@0").shape == (p.coarse_m, 1)
        assert dag.tensor("R@0").shape == (FV1.m, 1)

    def test_golden_summary(self, cdag):
        # Hand-derived for one cycle, nu=2: smoother SpMM -> Jacobi
        # pairs pipeline; grid transfers are sequential (the consumer's
        # dominant rank lives on the other grid); every reuse across a
        # transfer or a smoother sweep is delayed-writeback; nothing is
        # delayed-hold (no path pipelines end-to-end).
        assert cdag.summary() == {
            "sequential": 7,
            "pipelineable": 8,
            "delayed_hold": 0,
            "delayed_writeback": 6,
        }

    def test_grid_transfers_break_pipelining(self, cdag):
        assert _dep(cdag, "res:sub@0", "rst:restrict@0", "R@0") is SEQ
        assert _dep(cdag, "crs:jac@0.1", "prl:prolong@0", "E@0.2") is SEQ

    def test_solution_held_across_coarse_excursion(self, cdag):
        # The pre-smoothed X re-surfaces at the correction add — the
        # longest delayed-writeback distance in the program.
        assert _dep(cdag, "pre:jac@0.1", "cor:add@0", "X@0.pre") is WB
        dist = cdag.dag.op_index("cor:add@0") - cdag.dag.op_index("pre:jac@0.1")
        assert dist == 8  # residual pair + transfer + 3 coarse ops + transfer + add

    def test_restricted_residual_held_across_sweeps(self, cdag):
        assert _dep(cdag, "rst:restrict@0", "crs:jac@0.0", "RC@0") is PIPE
        assert _dep(cdag, "rst:restrict@0", "crs:jac@0.1", "RC@0") is WB

    def test_smoother_pipelines(self, cdag):
        assert _dep(cdag, "pre:spmm@0.0", "pre:jac@0.0", "AX@0.pre0") is PIPE
        assert _dep(cdag, "prl:prolong@0", "cor:add@0", "EF@0") is PIPE

    def test_validation(self):
        with pytest.raises(ValueError):
            MultigridProblem(matrix=FV1, cycles=0)
        with pytest.raises(ValueError):
            MultigridProblem(matrix=FV1, nu=0)


class TestExtRegistry:
    def test_round_trip_default_names(self):
        for w in all_ext_workloads():
            assert is_resolvable(w.name)
            again = resolve_workload(w.name)
            assert again.name == w.name
            assert again.family == w.family
            assert len(again.build()) == len(w.build())

    def test_round_trip_non_default_names(self):
        for name in (
            "xformer/s=256/d=256@x2",
            "gmres/NASA4704/m=4/N=2@rs1",
            "mg/G2_circuit/N=4@cyc1",
        ):
            w = resolve_workload(name)
            assert w.name == name
            assert len(w.build()) > 0

    def test_names_are_picklable_sweep_payloads(self):
        # The orchestrator ships names (not Workload objects) across
        # process boundaries; a pickled name must resolve identically.
        from repro.orchestrator.spec import SweepPoint

        for w in all_ext_workloads():
            p = SweepPoint(w.name, "CELLO")
            thawed = pickle.loads(pickle.dumps(p))
            assert thawed == p
            assert resolve_workload(thawed.workload).name == w.name

    def test_registry_contains_ext_families(self):
        families = {w.family for w in all_workloads().values()}
        assert {"xformer", "gmres", "mg"} <= families

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("gmres/nope/m=8/N=1")
        with pytest.raises(KeyError):
            resolve_workload("mg/nope/N=1")

    def test_factories_match_grammar(self):
        assert transformer_workload(256, 128, blocks=3).name == "xformer/s=256/d=128@x3"
        assert gmres_workload(SHALLOW_WATER1, m=16, n=4).name == "gmres/shallow_water1/m=16/N=4"
        assert multigrid_workload(FV1, n=2, cycles=5).name == "mg/fv1/N=2@cyc5"


class TestExtExperiment:
    def test_smoke_and_orderings(self):
        from repro.experiments import ext_workloads

        cfg = AcceleratorConfig()
        panels = ext_workloads.run(
            cfg,
            workloads=(
                transformer_workload(seq=128, d_model=128),
                gmres_workload(FV1, m=4, restarts=1),
                multigrid_workload(FV1, cycles=1),
            ),
            configs=("Flexagon", "FLAT", "CELLO"),
            srams=(4 * MIB,),
        )
        assert len(panels) == 3
        by_family = {p.family: p for p in panels}
        assert set(by_family) == {"xformer", "gmres", "mg"}
        for p in panels:
            # CELLO never moves more DRAM traffic than the baselines.
            cello = p.results["CELLO"].dram_bytes
            assert cello <= p.results["FLAT"].dram_bytes
            assert cello <= p.results["Flexagon"].dram_bytes
        # GMRES is the adversarial case for pipelining-only schedules:
        # FLAT gains almost nothing over op-by-op, CELLO gains a lot.
        g = by_family["gmres"]
        assert g.results["FLAT"].dram_bytes > 0.9 * g.results["Flexagon"].dram_bytes
        assert g.results["CELLO"].dram_bytes < 0.5 * g.results["Flexagon"].dram_bytes
        # The transformer's two holds make FLAT capture only part of
        # CELLO's win (FLAT pipelines but cannot hold skips).
        x = by_family["xformer"]
        assert x.results["CELLO"].dram_bytes < x.results["FLAT"].dram_bytes

    def test_report_renders(self):
        from repro.experiments import ext_workloads

        rep = ext_workloads.report()
        for marker in ("xformer", "gmres", "mg", "CELLO"):
            assert marker in rep
