"""Property-based tests of Algorithm 2 over randomly generated DAGs.

Hypothesis builds small random einsum DAGs (mixed dominances, random
fan-out, occasional inverse nodes); the classifier must uphold its
structural invariants on every one of them:

* every producer→consumer edge receives exactly one class;
* delayed (hold/writeback) classes appear only on transitive edges;
* pipelineable appears only on non-transitive edges;
* contracted-dominant and inverse sources never emit pipelineable/hold;
* parallel multicast counts only non-transitive fan-out.

Plus end-to-end sanity: SCORE schedules every random DAG, and the CELLO
engine's traffic never exceeds the op-by-op oracle.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flexagon import oracle_traffic
from repro.core.classify import DependencyType, classify_dependencies
from repro.core.dag import TensorDag
from repro.core.dominance import Dominance
from repro.core.einsum import EinsumOp, OpKind
from repro.core.ranks import Rank
from repro.core.tensor import dense_tensor
from repro.hw.config import AcceleratorConfig
from repro.score.scheduler import Score
from repro.sim.engine import ScheduleEngine

CFG = AcceleratorConfig()

# Node blueprints: (shape kind, op kind).
_SHAPES = ("skewed_u", "skewed_c", "balanced")


@st.composite
def random_dag(draw) -> TensorDag:
    """A random 3-10 op DAG.

    Each op consumes 1-2 previously produced (or fresh input) tensors and
    produces one tensor.  Shapes are drawn so all three dominance classes
    occur; a few ops are inverses.  All tensors share the M×N shape so any
    producer/consumer pairing is shape-consistent.
    """
    n_ops = draw(st.integers(3, 10))
    m = draw(st.sampled_from([512, 4096]))
    n = 16
    dag = TensorDag()
    produced: List[str] = []
    fresh = 0
    for i in range(n_ops):
        shape = draw(st.sampled_from(_SHAPES))
        is_inverse = draw(st.booleans()) and draw(st.booleans())  # ~25%

        def operand(name: str, first: Rank, second: Rank):
            return dense_tensor(name, (first, second))

        # Choose inputs: prefer earlier outputs, else fresh program inputs.
        inputs = []
        n_inputs = draw(st.integers(1, 2))
        for _ in range(n_inputs):
            if produced and draw(st.booleans()):
                src = draw(st.sampled_from(produced))
            else:
                src = f"IN{fresh}"
                fresh += 1
            inputs.append(src)
        inputs = list(dict.fromkeys(inputs))  # dedup, keep order

        r_m = Rank("m", m)
        r_n = Rank("n", n)
        r_md = Rank("md", m)      # dense M-sized contraction
        r_j = Rank("j", n)

        if is_inverse and len(inputs) >= 1:
            # Small-op inverse: bind inputs over (j, n)-like small ranks.
            ins = tuple(
                operand(name, Rank("np", n), r_j) if k == 0
                else operand(name, r_j, r_n)
                for k, name in enumerate(inputs[:2])
            )
            if len(ins) == 1:
                ins = (operand(inputs[0], r_j, r_n),)
                op = EinsumOp(
                    name=f"op{i}", inputs=ins,
                    output=operand(f"T{i}", Rank("np", n), r_n),
                    kind=OpKind.INVERSE,
                )
            else:
                op = EinsumOp(
                    name=f"op{i}", inputs=ins,
                    output=operand(f"T{i}", Rank("np", n), r_n),
                    contracted=("j",), kind=OpKind.INVERSE,
                )
        elif shape == "skewed_u":
            # Element-wise skewed update (uncontracted dominant, like CG
            # lines 3/4/7 with the small GEMM folded).
            ins = [operand(inputs[0], r_m, r_j)]
            if len(inputs) > 1:
                ins.append(operand(inputs[1], r_m, r_n))
            op = EinsumOp(
                name=f"op{i}", inputs=tuple(ins),
                output=operand(f"T{i}", r_m, r_n),
                kind=OpKind.ELEMENTWISE,
            )
        elif shape == "skewed_c":
            # Gram: contraction over the big rank.
            ins = [operand(inputs[0], r_md, r_n)]
            if len(inputs) > 1:
                ins.append(operand(inputs[1], r_md, Rank("np", n)))
            op = EinsumOp(
                name=f"op{i}", inputs=tuple(ins),
                output=operand(f"T{i}", r_j, r_n),
                contracted=("md",),
            )
        else:  # balanced
            r_a = Rank("a", 256)
            r_b = Rank("b", 256)
            r_c = Rank("c", 256)
            ins = [dense_tensor(inputs[0], (r_a, r_b))]
            if len(inputs) > 1:
                ins.append(dense_tensor(inputs[1], (r_b, r_c)))
                op = EinsumOp(
                    name=f"op{i}", inputs=tuple(ins),
                    output=dense_tensor(f"T{i}", (r_a, r_c)),
                    contracted=("b",),
                )
            else:
                op = EinsumOp(
                    name=f"op{i}", inputs=tuple(ins),
                    output=dense_tensor(f"T{i}", (r_a, r_b)),
                    kind=OpKind.ELEMENTWISE,
                )
        try:
            dag.add_op(op)
            produced.append(op.output.name)
        except ValueError:
            # Shape conflict with an earlier binding of the same tensor —
            # skip this op (the DAG stays valid).
            continue
    return dag


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_every_edge_classified_exactly_once(dag):
    if len(dag) == 0:
        return
    cdag = classify_dependencies(dag)
    edges = dag.edges()
    assert set(cdag.dependency) == {e.key() for e in edges}
    assert sum(cdag.summary().values()) == len(edges)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_delayed_only_on_transitive_edges(dag):
    if len(dag) == 0:
        return
    cdag = classify_dependencies(dag)
    for e in dag.edges():
        dep = cdag.dep_of(e)
        if dep.is_delayed:
            assert dag.is_transitive_edge(e)
        if dep is DependencyType.PIPELINEABLE:
            assert not dag.is_transitive_edge(e)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_blocking_sources_never_pipeline(dag):
    if len(dag) == 0:
        return
    cdag = classify_dependencies(dag)
    for e in dag.edges():
        assert e.src is not None
        src_op = dag.op(e.src)
        dep = cdag.dep_of(e)
        blocked = (
            cdag.dominance[e.src].kind is Dominance.CONTRACTED
            or src_op.kind is OpKind.INVERSE
        )
        if blocked:
            assert dep is DependencyType.SEQUENTIAL


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_multicast_counts_nontransitive_fanout(dag):
    if len(dag) == 0:
        return
    cdag = classify_dependencies(dag)
    for op in dag.ops:
        nontransitive = sum(
            1 for e in dag.out_edges(op.name) if not dag.is_transitive_edge(e)
        )
        assert cdag.numcast[op.name] == nontransitive
        assert cdag.parallel_multicast[op.name] == (nontransitive > 1)


@given(random_dag())
@settings(max_examples=30, deadline=None)
def test_cello_never_exceeds_oracle_on_random_dags(dag):
    if len(dag) == 0:
        return
    schedule = Score(CFG).schedule(dag)
    result = ScheduleEngine(CFG).run(schedule)
    reads, writes = oracle_traffic(dag)
    assert result.dram_bytes <= reads + writes
