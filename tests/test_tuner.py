"""Tests for the co-design autotuner: spaces, Pareto pruning, strategies,
orchestrator-dispatched evaluation, and result round-tripping."""

import json

import pytest

from repro.baselines import runner
from repro.baselines.configs import parse_cello_variant, run_config
from repro.hw.config import MIB, AcceleratorConfig
from repro.orchestrator import ResultStore
from repro.sim.engine import EngineOptions
from repro.tuner import (
    GridStrategy,
    HalvingStrategy,
    ParetoFront,
    RandomStrategy,
    TunePoint,
    TuneResult,
    TuneSpace,
    dominates,
    make_strategy,
    tune,
    validate_objectives,
)
from repro.workloads.registry import resolve_workload

#: Tiny but real workload: 2-iteration block CG (milliseconds per
#: simulation) whose N=16 footprints genuinely contend at 1 MB, so SRAM
#: capacity is a real runtime-vs-area trade-off axis.
WORKLOAD = "cg/fv1/N=16@it2"

#: Small joint space: 8 schedule combos x 2 table sizes x 2 SRAM sizes
#: + 2 cache policies x 2 SRAM sizes = 36 points.
SPACE = TuneSpace(
    chord_entries=(64, 16),
    sram_bytes=(4 * MIB, 1 * MIB),
    cache_policies=("LRU", "SRRIP"),
)


@pytest.fixture(autouse=True)
def _fresh_runner_state():
    runner.clear_cache()
    runner.reset_simulation_count()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


class TestTunePoint:
    def test_default_is_fixed_cello(self):
        p = TunePoint()
        assert p.config_name() == "CELLO"
        assert p.engine_options() == EngineOptions()

    def test_knob_encoding_round_trips_through_config_parser(self):
        p = TunePoint(use_riff=False, charge_swizzle=False)
        options = parse_cello_variant(p.config_name())
        assert options is not None
        assert options.use_riff is False
        assert options.explicit_retire is True
        assert options.charge_swizzle is False

    def test_cache_point_normalises_schedule_knobs(self):
        a = TunePoint(cache_policy="LRU", use_riff=False)
        b = TunePoint(cache_policy="LRU")
        assert a == b
        assert a.config_name() == "Flex+LRU"
        assert a.engine_options() is None

    def test_accel_cfg_substitutes_hardware_knobs(self):
        p = TunePoint(sram_bytes=1 * MIB, line_bytes=32, chord_entries=16)
        cfg = p.accel_cfg(AcceleratorConfig())
        assert (cfg.sram_bytes, cfg.line_bytes, cfg.chord_entries) == (
            1 * MIB, 32, 16)
        # Untouched axes survive from the base.
        assert cfg.n_macs == AcceleratorConfig().n_macs

    def test_knobs_round_trip(self):
        p = TunePoint(explicit_retire=False, sram_bytes=2 * MIB)
        assert TunePoint.from_knobs(p.knobs()) == p

    def test_invalid_points_raise(self):
        with pytest.raises(ValueError):
            TunePoint(cache_policy="FIFO")
        with pytest.raises(ValueError):
            TunePoint(line_bytes=24)
        with pytest.raises(ValueError):
            TunePoint(chord_entries=0)


class TestTuneSpace:
    def test_size_and_enumeration_agree(self):
        pts = SPACE.points()
        assert len(pts) == len(SPACE) == 36
        assert len(set(pts)) == len(pts)

    def test_default_point_is_head_of_axes_and_contained(self):
        d = SPACE.default_point()
        assert d.config_name() == "CELLO"
        assert d.chord_entries == 64 and d.sram_bytes == 4 * MIB
        assert d in SPACE

    def test_sample_without_replacement_exhausts_space(self):
        import random

        assert set(SPACE.sample(random.Random(0), 999)) == set(SPACE.points())
        assert len(SPACE.sample(random.Random(0), 5)) == 5

    def test_neighbors_differ_in_one_axis_and_stay_inside(self):
        d = SPACE.default_point()
        all_points = set(SPACE.points())
        for n in SPACE.neighbors(d):
            assert n != d
            assert n in all_points

    def test_invalid_spaces_raise(self):
        with pytest.raises(ValueError):
            TuneSpace(chord_entries=())
        with pytest.raises(ValueError):
            TuneSpace(sram_bytes=(MIB, MIB))
        with pytest.raises(ValueError):
            TuneSpace(cache_policies=("FIFO",))


class TestParetoFront:
    def test_dominance_pruning(self):
        front = ParetoFront(("runtime", "dram"))
        a, b, c = TunePoint(), TunePoint(use_riff=False), TunePoint(
            explicit_retire=False)
        assert front.add(a, "A", {"runtime": 2.0, "dram": 10.0})
        # Dominated on both axes: rejected.
        assert not front.add(b, "B", {"runtime": 3.0, "dram": 11.0})
        # Trade-off point joins.
        assert front.add(b, "B", {"runtime": 3.0, "dram": 5.0})
        assert len(front) == 2
        # A dominating point evicts everything it dominates.
        assert front.add(c, "C", {"runtime": 1.0, "dram": 4.0})
        assert [e.config for e in front] == ["C"]

    def test_exact_tie_keeps_first_seen(self):
        front = ParetoFront(("runtime",))
        assert front.add(TunePoint(), "first", {"runtime": 1.0})
        assert not front.add(TunePoint(use_riff=False), "second",
                             {"runtime": 1.0})
        assert front.dominated({"runtime": 1.0})
        assert not front.dominated({"runtime": 0.5})

    def test_entries_sorted_by_primary_objective(self):
        front = ParetoFront(("runtime", "dram"))
        front.add(TunePoint(), "slow", {"runtime": 5.0, "dram": 1.0})
        front.add(TunePoint(use_riff=False), "fast", {"runtime": 1.0, "dram": 9.0})
        assert [e.config for e in front.entries] == ["fast", "slow"]

    def test_dominates_requires_equal_length(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_validate_objectives(self):
        assert validate_objectives(["dram", "dram", "runtime"]) == (
            "dram", "runtime")
        with pytest.raises(KeyError):
            validate_objectives(["latency"])
        with pytest.raises(ValueError):
            validate_objectives([])


class TestStrategies:
    def test_make_strategy(self):
        assert isinstance(make_strategy("grid"), GridStrategy)
        assert isinstance(make_strategy("random", budget=7), RandomStrategy)
        assert isinstance(make_strategy("halving", seed=3), HalvingStrategy)
        with pytest.raises(KeyError):
            make_strategy("simulated-annealing")

    def test_budgets_must_be_positive(self):
        with pytest.raises(ValueError):
            RandomStrategy(budget=0)
        with pytest.raises(ValueError):
            HalvingStrategy(budget=-1)
        with pytest.raises(ValueError):
            HalvingStrategy(survivors=0)

    def test_grid_refuses_absurd_spaces(self):
        huge = TuneSpace(
            chord_entries=tuple(range(1, 200)),
            sram_bytes=tuple(MIB * i for i in range(1, 9)),
        )
        with pytest.raises(ValueError):
            GridStrategy().run(huge, lambda pts: [])


class TestTune:
    def test_grid_front_is_non_trivial_and_best_beats_incumbent(self):
        tr = tune(WORKLOAD, space=SPACE, strategy=GridStrategy(),
                  objectives=("runtime", "dram", "area"))
        assert len(tr.evaluations) == len(SPACE)
        assert len(tr.front) >= 2
        assert tr.best.result.time_s <= tr.incumbent.result.time_s
        assert tr.speedup_over_incumbent() >= 1.0
        assert tr.incumbent.config == "CELLO"

    def test_random_with_full_budget_matches_grid(self):
        grid = tune(WORKLOAD, space=SPACE, strategy=GridStrategy(),
                    objectives=("runtime", "dram"))
        rand = tune(WORKLOAD, space=SPACE,
                    strategy=RandomStrategy(budget=len(SPACE) + 10, seed=3),
                    objectives=("runtime", "dram"))
        assert rand.best.point == grid.best.point
        assert {e.point for e in rand.evaluations} == {
            e.point for e in grid.evaluations}

    def test_random_budget_is_respected_and_includes_incumbent(self):
        tr = tune(WORKLOAD, space=SPACE, strategy=RandomStrategy(budget=6, seed=0),
                  objectives=("runtime",))
        assert len(tr.evaluations) <= 7  # budget (+ incumbent when unsampled)
        assert any(e.point == SPACE.default_point() for e in tr.evaluations)

    def test_halving_stays_within_budget_and_beats_incumbent(self):
        tr = tune(WORKLOAD, space=SPACE,
                  strategy=HalvingStrategy(budget=12, seed=1),
                  objectives=("runtime", "dram"))
        assert len(tr.evaluations) <= 13
        assert tr.best.result.time_s <= tr.incumbent.result.time_s

    def test_strategies_are_deterministic_given_seed(self):
        a = tune(WORKLOAD, space=SPACE, strategy=HalvingStrategy(budget=10, seed=7))
        b = tune(WORKLOAD, space=SPACE, strategy=HalvingStrategy(budget=10, seed=7))
        # The rerun replays from the warm cache (n_simulations drops to
        # zero); everything the search *decided* must be identical.
        assert a.evaluations == b.evaluations
        assert a.best == b.best
        assert b.n_simulations == 0

    def test_workload_object_and_name_agree(self):
        small = TuneSpace(chord_entries=(64,))
        by_name = tune(WORKLOAD, space=small, strategy=GridStrategy())
        by_obj = tune(resolve_workload(WORKLOAD), space=small,
                      strategy=GridStrategy())
        assert by_name.evaluations == by_obj.evaluations
        assert by_name.workload == by_obj.workload

    def test_unknown_objective_raises(self):
        with pytest.raises(KeyError):
            tune(WORKLOAD, space=SPACE, objectives=("latency",))


class TestBestFrontAgreement:
    def test_exact_tie_best_is_first_seen_and_on_front(self):
        """`best` and `ParetoFront` share the first-seen tie rule, so the
        report's 'best' row is always a frontier entry."""
        from repro.sim.results import SimResult
        from repro.tuner import TuneEval, TuneResult

        def ev(point, config):
            result = SimResult(
                config=config, workload="w", total_macs=1,
                dram_read_bytes=1, dram_write_bytes=0,
                compute_s=1.0, memory_s=1.0,
            )
            return TuneEval(point=point, config=config,
                            objectives={"runtime": 1.0}, result=result)

        first = ev(TunePoint(charge_swizzle=False), "CELLO[swz=0]")
        tied = ev(TunePoint(explicit_retire=False), "CELLO[retire=0]")
        tr = TuneResult(
            workload="w", strategy="grid", objectives=("runtime",),
            evaluations=(first, tied), incumbent=first, n_simulations=2,
        )
        assert tr.best == first  # not the lexicographically-smaller config
        assert [e.config for e in tr.front] == [first.config]


class TestTuneResultRoundTrip:
    def test_json_round_trip_identity(self):
        tr = tune(WORKLOAD, space=SPACE, strategy=RandomStrategy(budget=8, seed=2),
                  objectives=("runtime", "dram", "energy", "area"))
        again = TuneResult.from_dict(json.loads(json.dumps(tr.to_dict())))
        assert again == tr
        assert again.best == tr.best
        assert [e.config for e in again.front] == [e.config for e in tr.front]

    def test_schema_mismatch_rejected(self):
        tr = tune(WORKLOAD, space=SPACE, strategy=RandomStrategy(budget=4))
        data = tr.to_dict()
        data["v"] = 999
        with pytest.raises(ValueError):
            TuneResult.from_dict(data)


class TestTuneThroughStore:
    """The tentpole's persistence/orchestrator contract."""

    def test_warm_rerun_performs_zero_simulations(self, tmp_path):
        runner.set_store(ResultStore(tmp_path))
        cold = tune(WORKLOAD, space=SPACE, strategy=GridStrategy())
        assert cold.n_simulations == len(SPACE)
        # New process-life simulation: drop the in-memory tiers, keep disk.
        runner.clear_cache()
        runner.set_store(ResultStore(tmp_path))
        warm = tune(WORKLOAD, space=SPACE, strategy=GridStrategy())
        assert warm.n_simulations == 0
        assert warm.evaluations == cold.evaluations

    def test_parallel_warm_evaluations_byte_identical_to_serial_engines(
            self, tmp_path):
        """Differential: orchestrator-dispatched tuner evaluations equal
        direct serial ScheduleEngine/CacheEngine runs, byte for byte."""
        runner.set_store(ResultStore(tmp_path))
        tr = tune(WORKLOAD, space=SPACE, strategy=GridStrategy(), jobs=2)
        dag = resolve_workload(WORKLOAD).build()
        for e in tr.evaluations:
            direct = run_config(
                e.config, dag, e.point.accel_cfg(AcceleratorConfig()),
                workload_name=WORKLOAD,
            )
            assert direct == e.result
