"""Tests for the simulation substrate: address map, trace, perf, energy,
results and the DRAM ledger."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.sim.address_map import AddressMap
from repro.sim.dram import DramChannel
from repro.sim.energy import energy_of, offchip_energy_j, onchip_energy_j
from repro.sim.perf import compute_seconds, make_result, memory_seconds
from repro.sim.results import SimResult, geomean, geomean_speedup, relative_energy
from repro.sim.trace import auto_granularity, op_trace, program_trace, trace_bytes
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.matrices import FV1

CFG = AcceleratorConfig()


class TestAddressMap:
    def test_extents_are_disjoint_and_aligned(self):
        amap = AddressMap(line_bytes=16)
        a = amap.add("A", 100)
        b = amap.add("B", 50)
        assert a.end <= b.base
        assert a.base % 16 == 0
        assert b.base % 16 == 0

    def test_duplicate_rejected(self):
        amap = AddressMap()
        amap.add("A", 10)
        with pytest.raises(ValueError):
            amap.add("A", 10)

    def test_for_dag_maps_everything(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=1))
        amap = AddressMap.for_dag(dag)
        for t in dag.tensors:
            assert t.name in amap
            assert amap.get(t.name).nbytes == t.bytes

    def test_contains_and_get(self):
        amap = AddressMap()
        amap.add("A", 10)
        assert "A" in amap
        with pytest.raises(KeyError):
            amap.get("B")


class TestTrace:
    @pytest.fixture(scope="class")
    def cg(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=1))
        return dag, AddressMap.for_dag(dag, line_bytes=CFG.line_bytes)

    def test_op_trace_covers_all_operands(self, cg):
        dag, amap = cg
        op = dag.op("1:spmm@0")
        segs = op_trace(op, dag, amap, rf_bytes=CFG.rf_bytes)
        by_tensor = {}
        for s in segs:
            by_tensor[s.tensor] = by_tensor.get(s.tensor, 0) + s.nbytes
        assert by_tensor["A"] == dag.tensor("A").bytes
        assert by_tensor["P@0"] == dag.tensor("P@0").bytes
        assert by_tensor["S@0"] == dag.tensor("S@0").bytes

    def test_output_segments_are_writes(self, cg):
        dag, amap = cg
        op = dag.op("1:spmm@0")
        for s in op_trace(op, dag, amap):
            assert s.is_write == (s.tensor == "S@0")

    def test_large_streams_interleave(self, cg):
        dag, amap = cg
        op = dag.op("1:spmm@0")
        segs = [s for s in op_trace(op, dag, amap, interleave_chunk=4096)
                if s.tensor in ("A", "P@0")]
        # Chunks of A and P alternate rather than A finishing first.
        first_ten = [s.tensor for s in segs[:10]]
        assert "A" in first_ten and "P@0" in first_ten

    def test_program_trace_bytes_equal_oracle(self, cg):
        dag, amap = cg
        total = trace_bytes(program_trace(dag, amap))
        oracle = sum(
            sum(dag.tensor(t.name).bytes for t in op.inputs)
            + dag.tensor(op.output.name).bytes
            for op in dag.ops
        )
        assert total == oracle

    def test_auto_granularity_bounds_accesses(self):
        g = auto_granularity(10**9, 16, target_accesses=1_000_000)
        assert (10**9) // (16 * g) <= 1_000_000
        assert g & (g - 1) == 0  # power of two
        assert auto_granularity(0, 16) == 1


class TestPerfModel:
    def test_compute_seconds(self):
        assert compute_seconds(16384 * 10**9, CFG) == pytest.approx(1.0)

    def test_memory_seconds(self):
        assert memory_seconds(10**12, CFG) == pytest.approx(1.0)

    def test_roofline_takes_max(self):
        r = make_result("c", "w", total_macs=16384 * 10**9,
                        dram_read_bytes=0, dram_write_bytes=10**11, cfg=CFG)
        assert r.time_s == pytest.approx(1.0)  # compute bound
        assert not r.memory_bound

    def test_memory_bound_detection(self):
        r = make_result("c", "w", total_macs=1000,
                        dram_read_bytes=10**9, dram_write_bytes=0, cfg=CFG)
        assert r.memory_bound

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            compute_seconds(-1, CFG)
        with pytest.raises(ValueError):
            memory_seconds(-1, CFG)


class TestResults:
    def _r(self, dram, macs=1000):
        return make_result("c", "w", macs, dram, 0, CFG)

    def test_speedup(self):
        fast, slow = self._r(100), self._r(400)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_dram_reduction(self):
        a, b = self._r(100), self._r(400)
        assert a.dram_reduction_vs(b) == pytest.approx(0.75)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_speedup(self):
        fast = [self._r(100), self._r(100)]
        slow = [self._r(200), self._r(800)]
        assert geomean_speedup(fast, slow) == pytest.approx(4.0)

    def test_relative_energy(self):
        res = {"a": self._r(100), "b": self._r(50)}
        rel = relative_energy(res, "a")
        assert rel == {"a": 1.0, "b": 0.5}

    def test_effective_intensity(self):
        r = self._r(dram=500, macs=1000)
        assert r.effective_intensity == pytest.approx(2.0)

    def test_as_dict_keys(self):
        d = self._r(10).as_dict()
        assert {"config", "workload", "dram_bytes", "throughput_gmacs"} <= set(d)


class TestEnergy:
    def test_offchip_energy_scales_with_traffic(self):
        assert offchip_energy_j(2000) == pytest.approx(2 * offchip_energy_j(1000))

    def test_onchip_charges_structures(self):
        e = onchip_energy_j({"cache": 1000, "chord": 1000}, CFG)
        assert e["cache"] > e["chord"]  # tag probes cost extra

    def test_unknown_structure_uses_small_cost(self):
        e = onchip_energy_j({"rf": 100}, CFG)
        assert e["rf"] > 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            onchip_energy_j({"cache": -1}, CFG)

    def test_energy_of_result(self):
        r = make_result("c", "w", 1000, 1000, 1000, CFG,
                        onchip_accesses={"chord": 10})
        e = energy_of(r, CFG)
        assert e.total_j == pytest.approx(e.offchip_j + e.onchip_j)
        assert e.offchip_j > 0


class TestDramChannel:
    def test_ledger(self):
        d = DramChannel()
        d.read(100, "cold")
        d.write(50, "spill")
        assert d.total_bytes == 150
        assert d.by_reason == {"cold": 100, "spill": 50}

    def test_merge_stats(self):
        d = DramChannel()
        d.merge_stats(10, 20, "chord")
        assert d.read_bytes == 10
        assert d.write_bytes == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DramChannel().read(-1)
