"""Loopback end-to-end tests for the simulation service.

The server runs in-process on a background thread (its own asyncio
loop), clients connect over real local TCP — so these tests cover the
full wire path: framing, job lifecycle, single-flight dedup, warm
resubmission, cancellation, backpressure plumbing and the CLI verbs.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.baselines import runner
from repro.baselines.configs import run_config
from repro.cli import main
from repro.hw.config import GB, MIB, AcceleratorConfig
from repro.orchestrator.spec import SweepSpec
from repro.service import (
    JobFailed,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    SimulationService,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    parse_request,
    request_to_spec,
    tune_request,
)
from repro.sim.perf import make_result
from repro.workloads.registry import resolve_workload

#: The standard small grid: 2 configs × 2 bandwidths = 4 points sharing
#: 2 distinct traffic keys (traffic is bandwidth-independent).
WORKLOAD = "cg/fv1/N=1"
CONFIGS = ("Flexagon", "CELLO")
BANDWIDTH_GB = (1000.0, 250.0)
DISTINCT_KEYS = 2


def _reset_runner():
    runner.clear_cache()
    runner.reset_simulation_count()
    runner.set_store(None)


class ServerThread:
    """Run a SimulationService on a daemon thread for the test's duration."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("batch_window_s", 0.0)
        self.service = SimulationService(**kwargs)
        self._thread = threading.Thread(
            target=self._run, name="repro-service-test", daemon=True)

    def _run(self):
        try:
            asyncio.run(self.service.run())
        except OSError:
            pass  # startup failure is visible via service.startup_error

    def __enter__(self):
        self._thread.start()
        assert self.service.wait_started(timeout=30)
        assert self.service.startup_error is None
        return self

    def __exit__(self, *exc_info):
        self.service.request_stop()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()

    @property
    def port(self):
        return self.service.port

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 60.0)
        return ServiceClient(port=self.port, **kwargs)


@pytest.fixture
def server(tmp_path):
    _reset_runner()
    with ServerThread(cache_dir=str(tmp_path / "cache")) as srv:
        yield srv
    _reset_runner()


def submit_standard(client):
    return client.submit_sweep([WORKLOAD], configs=list(CONFIGS),
                               bandwidth_gb=list(BANDWIDTH_GB))


def expected_results():
    """The same grid simulated directly through the engines — no runner
    caches, no service — as the byte-identity reference."""
    out = []
    workload = resolve_workload(WORKLOAD)
    for config in CONFIGS:
        base = run_config(config, workload.build(), AcceleratorConfig(),
                          workload_name=workload.name,
                          cache_granularity=None)
        for bw in BANDWIDTH_GB:
            cfg = AcceleratorConfig(dram_bandwidth_bytes_per_s=bw * GB)
            out.append(make_result(
                config=base.config, workload=base.workload,
                total_macs=base.total_macs,
                dram_read_bytes=base.dram_read_bytes,
                dram_write_bytes=base.dram_write_bytes,
                cfg=cfg, onchip_accesses=base.onchip_accesses))
    return out


class TestProtocol:
    def test_request_roundtrip(self):
        req = parse_request(encode_message({"op": "ping"}))
        assert req == {"op": "ping"}

    def test_rejects_bad_frames(self):
        for line in (b"not json\n", b"[1,2]\n", b'{"op":"warp"}\n'):
            with pytest.raises(ProtocolError):
                parse_request(line)

    def test_rejects_oversized_message(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "sweep",
                            "workloads": ["x" * (MAX_LINE_BYTES + 10)]})

    def test_sweep_spec_conversion(self):
        spec = request_to_spec({
            "op": "sweep", "workloads": [WORKLOAD],
            "configs": list(CONFIGS), "sram_mb": [4, 1],
            "bandwidth_gb": [1000.0]})
        assert spec.workloads == (WORKLOAD,)
        assert spec.sram_bytes == (4 * MIB, 1 * MIB)
        assert len(spec.points()) == 4

    def test_simulate_is_one_point_sweep(self):
        spec = request_to_spec({"op": "simulate", "workload": WORKLOAD,
                                "config": "CELLO"})
        assert len(spec.points()) == 1

    def test_rejects_unknown_config_and_bad_fields(self):
        with pytest.raises(ProtocolError, match="unknown config"):
            request_to_spec({"op": "sweep", "workloads": [WORKLOAD],
                             "configs": ["NotAConfig"]})
        with pytest.raises(ProtocolError, match="workloads"):
            request_to_spec({"op": "sweep", "workloads": [1, 2]})
        with pytest.raises(ProtocolError, match="sram_mb"):
            request_to_spec({"op": "sweep", "workloads": [WORKLOAD],
                             "sram_mb": ["big"]})
        with pytest.raises(ProtocolError, match="cache_granularity"):
            request_to_spec({"op": "sweep", "workloads": [WORKLOAD],
                             "cache_granularity": 0})


class TestServiceEndToEnd:
    def test_ping(self, server):
        with server.client() as client:
            pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["protocol"] == PROTOCOL_VERSION

    def test_results_byte_identical_to_direct_engine(self, server):
        with server.client() as client:
            outcome = submit_standard(client)
        assert outcome.simulations == DISTINCT_KEYS
        assert outcome.hits == 0 and outcome.coalesced == 0
        got = [json.dumps(p.result.to_dict(), sort_keys=True)
               for p in outcome.points]
        want = [json.dumps(r.to_dict(), sort_keys=True)
                for r in expected_results()]
        assert got == want

    def test_warm_resubmission_zero_simulations(self, server):
        with server.client() as client:
            first = submit_standard(client)
            second = submit_standard(client)
        assert first.simulations == DISTINCT_KEYS
        assert second.simulations == 0
        assert second.hits == DISTINCT_KEYS
        assert ([p.result.to_dict() for p in first.points]
                == [p.result.to_dict() for p in second.points])

    def test_concurrent_clients_single_flight(self, server):
        n_clients = 4
        outcomes = [None] * n_clients
        errors = []

        def worker(i):
            try:
                with server.client() as client:
                    outcomes[i] = submit_standard(client)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(o is not None for o in outcomes)
        # The acceptance bar: at most one simulation per distinct point,
        # across every concurrently-submitting client.
        assert runner.simulation_count() == DISTINCT_KEYS
        assert sum(o.simulations for o in outcomes) == DISTINCT_KEYS
        for o in outcomes:
            # Every distinct key was either simulated by this job,
            # answered warm, or coalesced onto another job's flight.
            assert o.simulations + o.hits + o.coalesced == DISTINCT_KEYS
        reference = [p.result.to_dict() for p in outcomes[0].points]
        for o in outcomes[1:]:
            assert [p.result.to_dict() for p in o.points] == reference

    def test_store_warm_across_server_restart(self, tmp_path):
        _reset_runner()
        cache = str(tmp_path / "cache")
        try:
            with ServerThread(cache_dir=cache) as srv:
                with srv.client() as client:
                    first = submit_standard(client)
            _reset_runner()  # cold process tiers; only the disk store is warm
            with ServerThread(cache_dir=cache) as srv:
                with srv.client() as client:
                    second = submit_standard(client)
            assert first.simulations == DISTINCT_KEYS
            assert second.simulations == 0
            assert second.hits == DISTINCT_KEYS
        finally:
            _reset_runner()

    def test_jobs_listing_and_stats(self, server):
        with server.client() as client:
            outcome = submit_standard(client)
            jobs = client.jobs()
            stats = client.stats()
        listed = {j["id"]: j for j in jobs}
        assert outcome.job_id in listed
        job = listed[outcome.job_id]
        assert job["state"] == "done"
        assert job["simulations"] == DISTINCT_KEYS
        assert job["done"] == job["total"] == len(outcome.points)
        assert stats["type"] == "stats"
        assert stats["simulations"] == DISTINCT_KEYS
        assert stats["points_streamed"] == len(outcome.points)
        assert stats["store"]["workloads"] == {WORKLOAD: DISTINCT_KEYS}

    def test_stats_merges_external_store_appends(self, server, tmp_path):
        """A one-shot CLI process appending to the shared cache directory
        becomes visible to the daemon at the next stats reload."""
        from repro.orchestrator import ResultStore
        from repro.orchestrator.store import result_key

        with server.client() as client:
            before = client.stats()["store"]["entries"]
            external = ResultStore(server.service.store.directory)
            key = result_key("CELLO", "gnn/cora", AcceleratorConfig(), None)
            external.put(key, expected_results()[0])
            after = client.stats()["store"]
        assert after["entries"] == before + 1
        assert after["workloads"].get("gnn/cora") == 1

    def test_tune_job_matches_direct_tuner(self, server):
        from repro.tuner import TuneResult, TuneSpace, make_strategy, tune

        with server.client() as client:
            data = client.submit_tune(WORKLOAD, strategy="grid",
                                      sram_mb=(4.0,), entries=(64,))
        via_service = TuneResult.from_dict(data)
        direct = tune(
            WORKLOAD,
            space=TuneSpace(chord_entries=(64,), sram_bytes=(4 * MIB,)),
            strategy=make_strategy("grid"), jobs=1)
        assert via_service.workload == direct.workload
        assert len(via_service.evaluations) == len(direct.evaluations)
        assert [dict(e.objectives) for e in via_service.evaluations] \
            == [dict(e.objectives) for e in direct.evaluations]
        assert via_service.incumbent.config == direct.incumbent.config

    def test_unknown_workload_job_errors(self, server):
        with server.client() as client:
            with pytest.raises(JobFailed, match="unknown workload"):
                client.submit_sweep(["nope/zz"], configs=["CELLO"])

    def test_cancel_unknown_job_errors(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError, match="unknown job"):
                client.cancel("j999")

    def test_cancel_finished_job_errors(self, server):
        with server.client() as client:
            outcome = submit_standard(client)
            with pytest.raises(ServiceError, match="already done"):
                client.cancel(outcome.job_id)


class TestPredict:
    """The analytic ``predict`` op: single response, zero simulations."""

    def test_predict_matches_direct_engine(self, server):
        with server.client() as client:
            reply = client.predict(WORKLOAD, "CELLO")
        assert reply["type"] == "predict"
        assert reply["fidelity"] == "analytic"
        workload = resolve_workload(WORKLOAD)
        direct = run_config("CELLO", workload.build(), AcceleratorConfig(),
                            workload_name=workload.name,
                            cache_granularity=None)
        assert reply["result"]["dram_read_bytes"] == direct.dram_read_bytes
        assert reply["result"]["dram_write_bytes"] == direct.dram_write_bytes
        # The whole point of the op: nothing was simulated.
        assert runner.simulation_count() == 0

    def test_predict_capacity_point_changes_regime(self, server):
        with server.client() as client:
            big = client.predict("cg/fv1/N=16", "CELLO", sram_mb=16.0)
            small = client.predict("cg/fv1/N=16", "CELLO", sram_mb=1.0)
        assert small["regime"] == "recurrence"
        assert big["regime"] in ("closed-form", "recurrence")
        assert (small["result"]["dram_read_bytes"]
                >= big["result"]["dram_read_bytes"])

    def test_predict_unsupported_config_errors(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError, match="no analytic model"):
                client.predict(WORKLOAD, "Flex+LRU")
        assert runner.simulation_count() == 0

    def test_predict_unknown_workload_errors(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError, match="unknown workload"):
                client.predict("nope/zz", "CELLO")

    def test_predict_bad_fields_error(self, server):
        raw = TestWireErrors()
        for payload, needle in (
            (b'{"op": "predict", "workload": "cg/fv1/N=1", '
             b'"config": "CELLO", "sram_mb": -1}\n', "sram_mb"),
            (b'{"op": "predict", "workload": "cg/fv1/N=1", '
             b'"config": "CELLO", "entries": 0}\n', "entries"),
            (b'{"op": "predict", "workload": "cg/fv1/N=1", '
             b'"config": "NotAConfig"}\n', "unknown config"),
            (b'{"op": "predict", "workload": "cg/fv1/N=1"}\n', "config"),
        ):
            reply = raw._raw(server, payload)
            assert reply["type"] == "error"
            assert needle in reply["error"]


class TestTuneFidelity:
    """The protocol-v3 ``fidelity`` tune field, end to end."""

    def test_hybrid_tune_over_wire_matches_exact_front(self, server):
        from repro.tuner import TuneResult

        with server.client() as client:
            hybrid = TuneResult.from_dict(client.submit_tune(
                WORKLOAD, strategy="grid", sram_mb=(4.0,), entries=(64, 16),
                fidelity="hybrid"))
            exact = TuneResult.from_dict(client.submit_tune(
                WORKLOAD, strategy="grid", sram_mb=(4.0,), entries=(64, 16)))
        assert hybrid.fidelity == "hybrid"
        assert hybrid.n_analytic > 0
        assert hybrid.analytic_max_rel_error is not None
        assert exact.fidelity == "exact"
        assert [(e.point, e.vector) for e in hybrid.front] \
            == [(e.point, e.vector) for e in exact.front]

    def test_exact_request_has_no_fidelity_field(self):
        # Default requests must stay byte-identical to protocol v2 so
        # old daemons keep accepting them.
        assert "fidelity" not in tune_request(WORKLOAD)
        assert tune_request(WORKLOAD, fidelity="hybrid")["fidelity"] \
            == "hybrid"

    def test_bad_fidelity_wire_error(self, server):
        reply = TestWireErrors()._raw(
            server, b'{"op": "tune", "workload": "cg/fv1/N=1", '
                    b'"fidelity": "psychic"}\n')
        assert reply["type"] == "error"
        assert "fidelity" in reply["error"]

    def test_old_daemon_rejected_client_side(self, server):
        with server.client() as client:
            client.ping = lambda: {"type": "pong", "protocol": 2}
            with pytest.raises(ServiceError, match="protocol v2.*v3"):
                client.submit_tune(WORKLOAD, fidelity="hybrid")

    def test_submit_tune_fidelity_verb(self, server, capsys):
        assert main(["submit", "--port", str(server.port),
                     "--tune", WORKLOAD, "--entries", "64",
                     "--tune-sram-mb", "4", "--fidelity", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "fidelity: hybrid" in out


class TestDisconnect:
    """EOF mid-conversation must explain itself (daemon restarts)."""

    def _half_open_server(self):
        """A fake daemon that accepts, reads one line, then hangs up —
        the client-visible shape of a daemon dying mid-stream."""
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)

        def run():
            conn, _ = sock.accept()
            with conn:
                conn.makefile("rb").readline()
            sock.close()

        t = threading.Thread(target=run, daemon=True)
        t.start()
        return sock.getsockname()[1], t

    def test_mid_stream_eof_names_the_daemon_and_retry(self):
        port, t = self._half_open_server()
        with ServiceClient(port=port, timeout=10) as client:
            with pytest.raises(ServiceConnectionError) as info:
                client.ping()
        t.join(timeout=10)
        text = str(info.value)
        assert "stopped or restarted" in text
        assert "retry" in text
        assert "repro serve" in text

    def test_submit_cli_reports_restart_guidance(self, capsys):
        port, t = self._half_open_server()
        assert main(["submit", "--port", str(port),
                     "--workloads", WORKLOAD]) == 2
        t.join(timeout=10)
        err = capsys.readouterr().err
        assert "submit failed" in err
        assert "retry the submission" in err

    def _role_announcing_server(self, role):
        """A fake endpoint that answers exactly one request with a pong
        naming its role, then hangs up — the client-visible shape of a
        gateway (or daemon) restarting between two requests."""
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)

        def run():
            conn, _ = sock.accept()
            with conn:
                rfile = conn.makefile("rb")
                rfile.readline()
                conn.sendall(encode_message(
                    {"type": "pong", "server": role,
                     "protocol": PROTOCOL_VERSION}))
                rfile.readline()  # second request: read it, answer nothing
            sock.close()

        t = threading.Thread(target=run, daemon=True)
        t.start()
        return sock.getsockname()[1], t

    def test_eof_after_gateway_pong_says_restart_the_gateway(self):
        """A dead gateway loses no shard state — the guidance must say
        to restart the *gateway* and promise warm hits, not tell the
        user to restart daemons that are still running."""
        port, t = self._role_announcing_server("repro-gateway")
        with ServiceClient(port=port, timeout=10) as client:
            assert client.ping()["server"] == "repro-gateway"
            with pytest.raises(ServiceConnectionError) as info:
                client.ping()
        t.join(timeout=10)
        text = str(info.value)
        assert "repro gateway" in text
        assert "shards" in text and "warm hits" in text
        assert "'repro serve'" not in text

    def test_eof_after_shard_pong_says_restart_the_daemon(self):
        port, t = self._role_announcing_server("repro-service")
        with ServiceClient(port=port, timeout=10) as client:
            assert client.ping()["server"] == "repro-service"
            with pytest.raises(ServiceConnectionError) as info:
                client.ping()
        t.join(timeout=10)
        text = str(info.value)
        assert "shard daemon stopped or restarted" in text
        assert "'repro serve'" in text
        assert "gateway" not in text

    def test_server_stop_mid_job_surfaces_service_error(self, tmp_path,
                                                        monkeypatch):
        """A real daemon stopping under a streaming sweep: the client
        must get a ServiceError (either the explanatory EOF or a reset),
        never a silent hang or an unhandled socket exception."""
        _reset_runner()
        original = SimulationService._execute_batch

        def slow_batch(self, batch):
            time.sleep(0.4)
            return original(self, batch)

        monkeypatch.setattr(SimulationService, "_execute_batch", slow_batch)
        try:
            srv = ServerThread(cache_dir=str(tmp_path / "cache"),
                               max_batch=1)
            with srv:
                with srv.client() as client:
                    client._send({"op": "sweep", "workloads": [WORKLOAD],
                                  "configs": ["Flexagon", "CELLO", "FLAT",
                                              "SET"]})
                    accepted = client._recv()
                    assert accepted["type"] == "accepted"
                    srv.service.request_stop()
                    with pytest.raises(ServiceError):
                        while True:
                            msg = client._recv()
                            if msg["type"] in ("done", "cancelled"):
                                break
                            if msg["type"] == "error":
                                raise ServiceError(str(msg.get("error")))
        finally:
            _reset_runner()


class TestCancellation:
    def test_cancel_stops_a_running_job(self, tmp_path, monkeypatch):
        """Slow each batch down, cancel mid-job, expect a 'cancelled'
        terminal message with fewer points streamed than submitted."""
        _reset_runner()
        original = SimulationService._execute_batch

        def slow_batch(self, batch):
            time.sleep(0.4)
            return original(self, batch)

        monkeypatch.setattr(SimulationService, "_execute_batch", slow_batch)
        try:
            with ServerThread(cache_dir=str(tmp_path / "cache"),
                              max_batch=1) as srv:
                with srv.client() as submitter, srv.client() as canceller:
                    submitter._send({
                        "op": "sweep", "workloads": [WORKLOAD],
                        "configs": ["Flexagon", "CELLO", "Flex+BRRIP",
                                    "FLAT"]})
                    accepted = submitter._recv()
                    assert accepted["type"] == "accepted"
                    job_id = accepted["job"]
                    assert canceller.cancel(job_id)["type"] == "ok"
                    terminal = None
                    while terminal is None:
                        msg = submitter._recv()
                        if msg["type"] in ("cancelled", "done", "error"):
                            terminal = msg
                    assert terminal["type"] == "cancelled"
                    assert terminal["job"] == job_id
                    assert terminal["done"] < 4
                    jobs = {j["id"]: j for j in canceller.jobs()}
                    assert jobs[job_id]["state"] == "cancelled"
        finally:
            _reset_runner()


class TestWireErrors:
    """Raw-socket clients sending hostile input."""

    def _raw(self, server, payload: bytes) -> dict:
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            sock.sendall(payload)
            reader = sock.makefile("r", encoding="utf-8")
            return json.loads(reader.readline())

    def test_garbage_line(self, server):
        reply = self._raw(server, b"!!! not json at all\n")
        assert reply["type"] == "error"
        assert "JSON" in reply["error"]

    def test_non_object_message(self, server):
        reply = self._raw(server, b"[1, 2, 3]\n")
        assert reply["type"] == "error"

    def test_unknown_op(self, server):
        reply = self._raw(server, b'{"op": "frobnicate"}\n')
        assert reply["type"] == "error"
        assert "unknown op" in reply["error"]

    def test_oversized_line_rejected(self, server):
        junk = b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        reply = self._raw(server, junk)
        assert reply["type"] == "error"
        assert "exceeds" in reply["error"]

    def test_empty_sweep_grid_errors(self, server):
        reply = self._raw(
            server, b'{"op": "sweep", "workloads": ["zz-no-match-*"]}\n')
        assert reply["type"] == "error"

    def test_tune_bad_field_types_error(self, server):
        for payload, field in (
            (b'{"op": "tune", "workload": "cg/fv1/N=1", '
             b'"sram_mb": ["4"]}\n', "sram_mb"),
            (b'{"op": "tune", "workload": "cg/fv1/N=1", '
             b'"budget": true}\n', "budget"),
            (b'{"op": "tune", "workload": "cg/fv1/N=1", '
             b'"entries": [0]}\n', "entries"),
            (b'{"op": "tune", "workload": 7}\n', "workload"),
        ):
            reply = self._raw(server, payload)
            assert reply["type"] == "error"
            assert field in reply["error"]


class TestServiceCli:
    def test_submit_and_jobs_verbs(self, server, capsys):
        port = str(server.port)
        assert main(["submit", "--port", port, "--workloads", WORKLOAD,
                     "--configs", "Flexagon,CELLO"]) == 0
        out = capsys.readouterr().out
        assert "Sweep job" in out and "simulations: 2" in out

        # Warm resubmission through the CLI: zero re-simulations.
        assert main(["submit", "--port", port, "--workloads", WORKLOAD,
                     "--configs", "Flexagon,CELLO"]) == 0
        assert "simulations: 0" in capsys.readouterr().out

        assert main(["jobs", "--port", port]) == 0
        out = capsys.readouterr().out
        assert "Jobs: 2" in out and "done" in out

        assert main(["jobs", "--port", port, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Service stats" in out and WORKLOAD in out

    def test_submit_tune_verb(self, server, capsys):
        assert main(["submit", "--port", str(server.port),
                     "--tune", WORKLOAD, "--entries", "64",
                     "--tune-sram-mb", "4"]) == 0
        out = capsys.readouterr().out
        assert "Tuned cg/fv1/N=1" in out and "Pareto" in out

    def test_submit_without_payload_errors(self, server, capsys):
        assert main(["submit", "--port", str(server.port)]) == 2
        assert "nothing to submit" in capsys.readouterr().err

    def test_submit_unknown_config_errors_locally(self, server, capsys):
        assert main(["submit", "--port", str(server.port),
                     "--workloads", WORKLOAD,
                     "--configs", "NotAConfig"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_submit_unknown_workload_errors_from_server(self, server,
                                                        capsys):
        assert main(["submit", "--port", str(server.port),
                     "--workloads", "nope/zz"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_jobs_cancel_unknown_errors(self, server, capsys):
        assert main(["jobs", "--port", str(server.port),
                     "--cancel", "j999"]) == 2
        assert "unknown job" in capsys.readouterr().err

    def test_shutdown_verb_stops_server(self, tmp_path, capsys):
        _reset_runner()
        try:
            srv = ServerThread(cache_dir=str(tmp_path / "cache"))
            with srv:
                assert main(["jobs", "--port", str(srv.port),
                             "--shutdown"]) == 0
                assert "shutting down" in capsys.readouterr().out
                srv._thread.join(timeout=30)
                assert not srv._thread.is_alive()
        finally:
            _reset_runner()

    def test_shutdown_completes_despite_idle_connection(self, tmp_path):
        """An idle client parked in readline must not block shutdown
        (Python >= 3.12.1 Server.wait_closed would wait on its handler)."""
        _reset_runner()
        try:
            srv = ServerThread(cache_dir=str(tmp_path / "cache"))
            with srv:
                idle = srv.client()  # connected, never sends a request
                try:
                    with srv.client() as active:
                        active.shutdown()
                    srv._thread.join(timeout=15)
                    assert not srv._thread.is_alive()
                finally:
                    idle.close()
        finally:
            _reset_runner()

    def test_cli_verbs_without_server_error(self, capsys):
        # Grab a port that is certainly closed.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = str(probe.getsockname()[1])
        assert main(["submit", "--port", free_port,
                     "--workloads", WORKLOAD]) == 2
        assert "no repro service reachable" in capsys.readouterr().err
        assert main(["jobs", "--port", free_port]) == 2
        assert "no repro service reachable" in capsys.readouterr().err

    def test_serve_port_in_use_errors(self, capsys):
        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            taken = str(holder.getsockname()[1])
            assert main(["serve", "--port", taken, "--no-cache"]) == 2
        assert "cannot serve" in capsys.readouterr().err

    def test_client_connection_error_type(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceConnectionError):
            ServiceClient(port=free_port, timeout=5)


class TestPointsOp:
    """The protocol-v4 explicit-point-list op against a lone daemon —
    the op a gateway uses to ship ring partitions to its shards."""

    def _points(self):
        return SweepSpec(
            workloads=(WORKLOAD,), configs=CONFIGS,
            bandwidths=tuple(bw * GB for bw in BANDWIDTH_GB)).points()

    def test_points_matches_sweep_byte_identical(self, server):
        with server.client() as client:
            via_points = client.submit_points(self._points())
            via_sweep = submit_standard(client)
        assert via_points.simulations == DISTINCT_KEYS
        # The sweep re-states the same grid: every key is already warm,
        # proving the two ops share one traffic-key space.
        assert via_sweep.simulations == 0
        assert via_sweep.hits == DISTINCT_KEYS
        assert [json.dumps(p.result.to_dict(), sort_keys=True)
                for p in via_points.points] \
            == [json.dumps(r.to_dict(), sort_keys=True)
                for r in expected_results()]
        assert [p.result.to_dict() for p in via_sweep.points] \
            == [p.result.to_dict() for p in via_points.points]

    def test_point_wire_roundtrip_keys_identically(self):
        from repro.orchestrator.spec import SweepPoint

        for point in self._points():
            again = SweepPoint.from_wire(point.to_wire())
            assert again.key() == point.key()
            assert again.cfg == point.cfg

    def test_malformed_points_wire_errors(self, server):
        raw = TestWireErrors()
        for payload, needle in (
            (b'{"op": "points"}\n', "points"),
            (b'{"op": "points", "points": []}\n', "non-empty"),
            (b'{"op": "points", "points": [7]}\n', "points[0]"),
            (b'{"op": "points", "points": [{"workload": "w"}]}\n',
             "points[0]"),
        ):
            reply = raw._raw(server, payload)
            assert reply["type"] == "error"
            assert needle in reply["error"]


class TestTopologyOp:
    def test_lone_daemon_reports_itself_as_one_shard(self, server):
        with server.client() as client:
            topo = client.topology()
        assert topo["type"] == "topology"
        assert topo["role"] == "shard"
        assert topo["protocol"] == PROTOCOL_VERSION
        assert topo["port"] == server.port
        assert topo["store"] == str(server.service.store.directory)
        assert topo["workers"] >= 1


class TestShardFuzz:
    """The shared hostile-frame corpus against a lone daemon's listener
    (test_fabric.py runs the same corpus against a gateway)."""

    def test_shard_survives_hostile_frames(self, server):
        from fabric import fuzz_exchange, fuzz_payloads

        for payload in fuzz_payloads():
            replies = fuzz_exchange(server.port, payload)
            if any(line.strip() for line in payload.split(b"\n")):
                assert replies, f"no reply to {payload[:40]!r}"
            assert all(r.get("type") == "error" for r in replies), payload
        with server.client() as client:
            assert client.ping()["type"] == "pong"
