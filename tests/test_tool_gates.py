"""The CI quality gates themselves: package-coverage verification
(``tools/check_coverage.py``) and the bench regression gate
(``tools/check_bench.py``), including the analytic-speedup floor.

The gates guard the repo; these tests guard the gates — a gate that
silently stops failing is worse than no gate at all, so each check is
exercised against synthetic reports on both sides of its threshold.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCoveragePackages:
    def _report(self, tmp_path, covered, omit=(), dead=()):
        files = {}
        for pkg in covered:
            if pkg in omit:
                continue
            files[f"src/repro/{pkg}/__init__.py"] = {
                "summary": {"covered_lines": 0 if pkg in dead else 5}}
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps({"files": files}))
        return str(path)

    def test_every_package_is_listed(self):
        packages = _tool("check_coverage").top_level_packages()
        # The subsystems this gate exists to protect must all be present.
        for pkg in ("analytic", "tuner", "service", "orchestrator",
                    "analysis", "sim", "chord", "score"):
            assert pkg in packages

    def test_complete_report_passes(self, tmp_path, capsys):
        cc = _tool("check_coverage")
        path = self._report(tmp_path, cc.top_level_packages())
        assert cc.verify_packages_json(path) == 0
        assert "measured and exercised" in capsys.readouterr().out

    def test_missing_package_fails(self, tmp_path, capsys):
        cc = _tool("check_coverage")
        path = self._report(tmp_path, cc.top_level_packages(),
                            omit=("analytic",))
        assert cc.verify_packages_json(path) == 1
        err = capsys.readouterr().err
        assert "src/repro/analytic/" in err and "missing" in err

    def test_unexercised_package_fails(self, tmp_path, capsys):
        cc = _tool("check_coverage")
        path = self._report(tmp_path, cc.top_level_packages(),
                            dead=("analytic",))
        assert cc.verify_packages_json(path) == 1
        assert "no line" in capsys.readouterr().err

    def test_non_coverage_json_rejected(self, tmp_path, capsys):
        cc = _tool("check_coverage")
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"results": {}}))
        assert cc.verify_packages_json(str(path)) == 1
        assert "not a coverage.py JSON report" in capsys.readouterr().err

    def test_package_of_maps_files_to_packages(self):
        cc = _tool("check_coverage")
        assert cc.package_of(
            str(REPO_ROOT / "src/repro/analytic/compiler.py")) == "analytic"
        # Root modules (src/repro/cli.py) belong to no sub-package.
        assert cc.package_of(str(REPO_ROOT / "src/repro/cli.py")) is None
        assert cc.package_of("/somewhere/else/file.py") is None


class TestBenchGate:
    BASE = {
        "results": {
            "cache_lru": {"vector_accesses_per_s": 1e6,
                          "reference_accesses_per_s": 1e5,
                          "speedup": 10.0},
            "analytic_eval": {"analytic_evals_per_s": 1e5,
                              "simulated_evals_per_s": 100.0,
                              "analytic_over_simulated": 1000.0,
                              "batch_evals_per_s": 1e7,
                              "batch_over_pointwise": 100.0},
        }
    }

    def _fresh(self, **overrides):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["results"]["analytic_eval"].update(overrides)
        return fresh

    def test_healthy_report_passes(self):
        cb = _tool("check_bench")
        assert cb.compare(self.BASE, self._fresh(), 10.0, 1.5, 100.0) == []

    def test_analytic_speedup_floor_fails(self):
        cb = _tool("check_bench")
        problems = cb.compare(self.BASE,
                              self._fresh(analytic_over_simulated=40.0),
                              10.0, 1.5, 100.0)
        assert any("analytic_over_simulated" in p for p in problems)

    def test_missing_analytic_ratio_fails(self):
        cb = _tool("check_bench")
        fresh = self._fresh()
        del fresh["results"]["analytic_eval"]["analytic_over_simulated"]
        problems = cb.compare(self.BASE, fresh, 10.0, 1.5, 100.0)
        assert any("analytic_over_simulated" in p for p in problems)

    def test_batch_speedup_floor_fails(self):
        cb = _tool("check_bench")
        problems = cb.compare(self.BASE,
                              self._fresh(batch_over_pointwise=20.0),
                              10.0, 1.5, 100.0)
        assert any("batch_over_pointwise" in p for p in problems)

    def test_missing_batch_ratio_fails(self):
        cb = _tool("check_bench")
        fresh = self._fresh()
        del fresh["results"]["analytic_eval"]["batch_over_pointwise"]
        problems = cb.compare(self.BASE, fresh, 10.0, 1.5, 100.0)
        assert any("batch_over_pointwise" in p for p in problems)

    def test_rate_regression_still_caught(self):
        cb = _tool("check_bench")
        problems = cb.compare(self.BASE,
                              self._fresh(analytic_evals_per_s=1e3),
                              10.0, 1.5, 100.0)
        assert any("analytic_evals_per_s" in p for p in problems)

    def test_dropped_bench_still_caught(self):
        cb = _tool("check_bench")
        fresh = json.loads(json.dumps(self.BASE))
        del fresh["results"]["analytic_eval"]
        problems = cb.compare(self.BASE, fresh, 10.0, 1.5, 100.0)
        assert any("missing from" in p for p in problems)

    def test_fresh_only_bench_fails_without_allow_new(self):
        cb = _tool("check_bench")
        fresh = self._fresh()
        fresh["results"]["brand_new"] = {"things_per_s": 1e6}
        problems = cb.compare(self.BASE, fresh, 10.0, 1.5, 100.0)
        assert any("brand_new" in p and "--allow-new" in p
                   for p in problems)

    def test_allow_new_downgrades_fresh_only_bench_to_a_note(
            self, capsys):
        cb = _tool("check_bench")
        fresh = self._fresh()
        fresh["results"]["brand_new"] = {"things_per_s": 1e6}
        problems = cb.compare(self.BASE, fresh, 10.0, 1.5, 100.0,
                              allow_new=True)
        assert problems == []
        assert "brand_new" in capsys.readouterr().out

    def test_committed_baseline_carries_the_analytic_bench(self):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_kernels.json").read_text())
        entry = baseline["results"]["analytic_eval"]
        assert entry["analytic_over_simulated"] >= 100.0
        assert entry["analytic_evals_per_s"] > entry["simulated_evals_per_s"]
        assert entry["batch_over_pointwise"] >= 50.0
        assert entry["batch_points"] >= 100_000


class TestAnalyticBench:
    def test_bench_analytic_eval_measures_both_paths(self):
        from repro.analysis.kernel_bench import bench_analytic_eval

        r = bench_analytic_eval(evals=2, sim_evals=2, batch_points=64)
        assert r["evals"] == 2
        assert r["analytic_evals_per_s"] > 0
        assert r["simulated_evals_per_s"] > 0
        assert r["batch_evals_per_s"] > 0
        # The whole point of the fast path (gated at 100x in CI; tested
        # looser here to keep this robust on loaded machines).
        assert r["analytic_over_simulated"] > 10

    def test_quick_bench_report_includes_analytic_eval(self):
        from repro.analysis.kernel_bench import render_bench

        report = {
            "quick": True,
            "results": {
                "chord_events": {"events_per_s": 1e6},
                "schedule_engine": {"ops_per_s": 1000.0, "seconds": 0.1},
                "cache_engine_g1": {"seconds": 0.5, "dram_bytes": 1e7},
                "analytic_eval": {"analytic_evals_per_s": 1e5,
                                  "simulated_evals_per_s": 100.0,
                                  "analytic_over_simulated": 1000.0,
                                  "batch_evals_per_s": 1e6,
                                  "batch_points": 1e5,
                                  "batch_over_pointwise": 60.0},
            },
        }
        out = render_bench(report)
        assert "analytic eval" in out and "1000x" in out


class TestBenchTrend:
    """The drift detector over committed bench history
    (``tools/bench_trend.py``) — the gate ``check_bench``'s generous
    10x factor cannot provide."""

    @staticmethod
    def _report(rate):
        return {"results": {"kernel": {"ops_per_s": rate,
                                       "seconds": 1.0}}}

    def _files(self, tmp_path, rates):
        paths = []
        for i, rate in enumerate(rates):
            path = tmp_path / f"bench_{i}.json"
            path.write_text(json.dumps(self._report(rate)))
            paths.append(str(path))
        return paths

    def test_steady_history_passes(self, tmp_path, capsys):
        bt = _tool("bench_trend")
        files = self._files(tmp_path, [100.0, 101.0, 99.0, 100.5])
        assert bt.main(["--files", *files]) == 0
        assert "bench trend ok" in capsys.readouterr().out

    def test_compounding_decline_fails(self, tmp_path, capsys):
        bt = _tool("bench_trend")
        # 20% per snapshot: each step passes check_bench's 10x factor,
        # only the trend fit can see it.
        files = self._files(tmp_path, [100.0, 80.0, 64.0, 51.2])
        assert bt.main(["--files", *files]) == 1
        err = capsys.readouterr().err
        assert "kernel.ops_per_s" in err and "declining" in err

    def test_fresh_report_can_tip_the_verdict(self, tmp_path):
        bt = _tool("bench_trend")
        files = self._files(tmp_path, [100.0, 100.0, 100.0])
        steady = str(tmp_path / "steady.json")
        Path(steady).write_text(json.dumps(self._report(99.0)))
        cliff = str(tmp_path / "cliff.json")
        Path(cliff).write_text(json.dumps(self._report(30.0)))
        assert bt.main(["--files", *files, "--fresh", steady]) == 0
        assert bt.main(["--files", *files, "--fresh", cliff]) == 1

    def test_insufficient_history_is_a_pass(self, tmp_path, capsys):
        bt = _tool("bench_trend")
        files = self._files(tmp_path, [100.0, 50.0])  # huge drop, n=2
        assert bt.main(["--files", *files]) == 0
        assert "insufficient history" in capsys.readouterr().out

    def test_window_ignores_ancient_decline(self, tmp_path):
        bt = _tool("bench_trend")
        # Old decline, recent plateau: a window-3 fit sees the plateau.
        files = self._files(tmp_path,
                            [400.0, 200.0, 100.0, 100.0, 100.0])
        assert bt.main(["--files", *files, "--window", "3"]) == 0
        assert bt.main(["--files", *files, "--window", "5"]) == 1

    def test_fit_slope_matches_a_clean_geometric_series(self):
        bt = _tool("bench_trend")
        import math

        slope = bt.fit_slope([100.0, 90.0, 81.0, 72.9])
        assert slope == pytest.approx(math.log(0.9))

    def test_git_mode_reads_the_committed_baseline(self, capsys):
        bt = _tool("bench_trend")
        reports = bt.git_history_reports("BENCH_kernels.json", 50)
        assert reports, "no committed bench history found"
        assert all("results" in r for r in reports)


class TestCiWiring:
    """The workflow file must keep invoking the gates (a gate nobody
    calls protects nothing)."""

    def test_ci_runs_the_gates(self):
        ci = (REPO_ROOT / ".github/workflows/ci.yml").read_text()
        assert "--verify-packages coverage.json" in ci
        assert "--min-analytic-speedup 100" in ci
        assert "--min-batch-speedup 50" in ci
        assert "fidelity-smoke:" in ci
        assert "--fidelity hybrid" in ci
        assert "within 2% bound" in ci
        assert "fidelity: hybrid" in ci

    def test_ci_runs_the_observability_smoke(self):
        ci = (REPO_ROOT / ".github/workflows/ci.yml").read_text()
        assert "metrics-smoke:" in ci
        assert "repro metrics" in ci or "-m repro metrics" in ci
        assert "tools/bench_trend.py" in ci
        assert "fetch-depth: 0" in ci
