"""Tests for repro.core.dag (graph machinery Algorithm 2 depends on)."""

import pytest

from repro.core.dag import Edge, TensorDag
from repro.core.einsum import EinsumOp
from repro.core.ranks import Rank
from repro.core.tensor import dense_tensor


def _t(name, m=8, n=8):
    return dense_tensor(name, (Rank("m", m), Rank("n", n)))


def _op(name, inputs, output):
    return EinsumOp(
        name=name,
        inputs=tuple(_t(i) for i in inputs),
        output=_t(output),
    )


def chain_dag(*names):
    """a -> b -> c ... linear chain; first tensor is a program input."""
    dag = TensorDag()
    tensors = [f"T{i}" for i in range(len(names) + 1)]
    for i, name in enumerate(names):
        dag.add_op(_op(name, [tensors[i]], tensors[i + 1]))
    return dag


def diamond_dag():
    """src feeds mid and dst; mid feeds dst: src->dst is transitive."""
    dag = TensorDag()
    dag.add_op(_op("src", ["In"], "S"))
    dag.add_op(_op("mid", ["S"], "M"))
    dag.add_op(EinsumOp(
        name="dst",
        inputs=(_t("S"), _t("M")),
        output=_t("Out"),
    ))
    return dag


class TestConstruction:
    def test_program_order_preserved(self):
        dag = chain_dag("a", "b", "c")
        assert dag.op_names == ("a", "b", "c")
        assert dag.op_index("b") == 1

    def test_duplicate_op_rejected(self):
        dag = chain_dag("a")
        with pytest.raises(ValueError):
            dag.add_op(_op("a", ["T1"], "T9"))

    def test_double_production_rejected(self):
        dag = chain_dag("a")
        with pytest.raises(ValueError):
            dag.add_op(_op("b", ["T0"], "T1"))

    def test_conflicting_shape_rejected(self):
        dag = chain_dag("a")
        bad = EinsumOp(
            name="b",
            inputs=(dense_tensor("T1", (Rank("m", 99), Rank("n", 8))),),
            output=_t("T2"),
        )
        with pytest.raises(ValueError):
            dag.add_op(bad)

    def test_unknown_lookups_raise(self):
        dag = chain_dag("a")
        with pytest.raises(KeyError):
            dag.op("zzz")
        with pytest.raises(KeyError):
            dag.tensor("zzz")
        with pytest.raises(KeyError):
            dag.op_index("zzz")


class TestTopology:
    def test_producer_and_consumers(self):
        dag = diamond_dag()
        assert dag.producer_of("S") == "src"
        assert dag.producer_of("In") is None
        assert dag.consumers_of("S") == ("mid", "dst")

    def test_program_inputs_outputs(self):
        dag = diamond_dag()
        assert dag.program_inputs() == ("In",)
        assert dag.program_outputs() == ("Out",)

    def test_successors_predecessors(self):
        dag = diamond_dag()
        assert dag.successors("src") == ("mid", "dst")
        assert set(dag.predecessors("dst")) == {"src", "mid"}

    def test_edges(self):
        dag = diamond_dag()
        keys = {e.key() for e in dag.edges()}
        assert ("src", "mid", "S") in keys
        assert ("src", "dst", "S") in keys
        assert ("mid", "dst", "M") in keys
        # Input edges only when asked.
        assert all(e.src is not None for e in dag.edges())
        with_inputs = dag.edges(include_inputs=True)
        assert any(e.src is None and e.tensor == "In" for e in with_inputs)


class TestLongestPath:
    def test_direct_edge(self):
        dag = chain_dag("a", "b")
        assert dag.longest_path("a", "b") == ("a", "b")

    def test_diamond_prefers_long_route(self):
        dag = diamond_dag()
        assert dag.longest_path("src", "dst") == ("src", "mid", "dst")

    def test_unreachable_returns_none(self):
        dag = TensorDag()
        dag.add_op(_op("a", ["In1"], "T1"))
        dag.add_op(_op("b", ["In2"], "T2"))
        assert dag.longest_path("a", "b") is None

    def test_transitive_edge_detection(self):
        dag = diamond_dag()
        direct = Edge(src="src", dst="dst", tensor="S")
        adjacent = Edge(src="src", dst="mid", tensor="S")
        assert dag.is_transitive_edge(direct)
        assert not dag.is_transitive_edge(adjacent)

    def test_input_edge_has_no_transitivity(self):
        dag = diamond_dag()
        with pytest.raises(ValueError):
            dag.is_transitive_edge(Edge(src=None, dst="src", tensor="In"))

    def test_path_edge_tensor(self):
        dag = diamond_dag()
        assert dag.path_edge_tensor("src", "mid") == "S"
        assert dag.path_edge_tensor("mid", "src") is None


class TestReuseMetadata:
    def test_frequency(self):
        dag = diamond_dag()
        assert dag.reuse_frequency("S") == 2
        assert dag.reuse_frequency("Out") == 0

    def test_distances(self):
        dag = diamond_dag()
        # S born at op 0; used at ops 1 and 2.
        assert dag.reuse_distances("S") == (1, 2)

    def test_last_and_next_use(self):
        dag = diamond_dag()
        assert dag.last_use_index("S") == 2
        assert dag.next_use_after("S", 0) == 1
        assert dag.next_use_after("S", 1) == 2
        assert dag.next_use_after("S", 2) is None
        assert dag.last_use_index("Out") is None

    def test_to_networkx_roundtrip(self):
        dag = diamond_dag()
        g = dag.to_networkx()
        assert set(g.nodes) == {"src", "mid", "dst"}
        assert g.number_of_edges() == 3
