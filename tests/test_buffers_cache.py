"""Tests for the set-associative cache + LRU/BRRIP policies.

Includes a reference LRU stack model (hit iff stack distance < assoc) that
the simulator must match exactly, and behavioural checks of BRRIP's
scan resistance (the property the paper's Fig. 11 leans on).
"""

import pytest

from repro.buffers.brrip import BrripPolicy
from repro.buffers.cache import SetAssociativeCache
from repro.buffers.lru import LruPolicy


def lru_cache(capacity=1024, line=16, assoc=4):
    return SetAssociativeCache(capacity, line, assoc, LruPolicy())


class TestGeometry:
    def test_sets(self):
        c = lru_cache(1024, 16, 4)
        assert c.n_sets == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 16, 4, LruPolicy())
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 16, 4, LruPolicy())  # 6 lines % 4 != 0


class TestLruReference:
    """Exactness against a per-set LRU stack reference model."""

    def _reference(self, blocks, n_sets, assoc):
        stacks = {s: [] for s in range(n_sets)}
        results = []
        for b in blocks:
            s = b % n_sets
            st = stacks[s]
            if b in st:
                st.remove(b)
                st.append(b)
                results.append(True)
            else:
                if len(st) == assoc:
                    st.pop(0)
                st.append(b)
                results.append(False)
        return results

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference_on_random_streams(self, seed):
        import random

        rng = random.Random(seed)
        blocks = [rng.randrange(0, 256) for _ in range(2000)]
        cache = lru_cache(capacity=4096, line=16, assoc=4)  # 64 sets
        expected = self._reference(blocks, cache.n_sets, cache.assoc)
        got = [cache.access_line(b, is_write=False) for b in blocks]
        assert got == expected

    def test_streaming_scan_never_hits(self):
        cache = lru_cache()
        for b in range(1000):
            assert cache.access_line(b, False) is False
        assert cache.stats.hit_rate == 0.0

    def test_small_working_set_all_hits_after_warmup(self):
        cache = lru_cache(capacity=1024, line=16, assoc=4)  # 64 lines
        ws = list(range(32))
        for b in ws:
            cache.access_line(b, False)
        hits_before = cache.stats.hits
        for _ in range(10):
            for b in ws:
                assert cache.access_line(b, False)
        assert cache.stats.hits == hits_before + 320


class TestWritebacks:
    def test_dirty_eviction_writes_back(self):
        cache = lru_cache(capacity=64, line=16, assoc=4)  # single set, 4 ways
        for b in range(4):
            cache.access_line(b, is_write=True)
        assert cache.stats.writebacks == 0
        cache.access_line(99, is_write=False)  # evicts dirty LRU block 0
        assert cache.stats.writebacks == 1
        assert cache.stats.dram_write_bytes == 16

    def test_clean_eviction_is_free(self):
        cache = lru_cache(capacity=64, line=16, assoc=4)
        for b in range(5):
            cache.access_line(b, is_write=False)
        assert cache.stats.evictions == 1
        assert cache.stats.dram_write_bytes == 0

    def test_flush_drains_all_dirty(self):
        cache = lru_cache(capacity=64, line=16, assoc=4)
        for b in range(3):
            cache.access_line(b, is_write=True)
        cache.flush()
        assert cache.stats.dram_write_bytes == 3 * 16
        cache.flush()  # idempotent
        assert cache.stats.dram_write_bytes == 3 * 16

    def test_every_miss_reads_a_line(self):
        cache = lru_cache()
        for b in range(100):
            cache.access_line(b, False)
        assert cache.stats.dram_read_bytes == 100 * 16


class TestAccessRange:
    def test_range_touches_overlapping_lines(self):
        cache = lru_cache()
        cache.access_range(start_byte=8, n_bytes=16, is_write=False)  # lines 0,1
        assert cache.stats.accesses == 2

    def test_empty_range_is_noop(self):
        cache = lru_cache()
        cache.access_range(0, 0, False)
        assert cache.stats.accesses == 0


class TestBrrip:
    def test_hit_promotes_to_zero(self):
        p = BrripPolicy(bits=2)
        st = p.make_set_state(4)
        p.on_fill(st, 0)
        p.on_hit(st, 0)
        assert st.rrpv[0] == 0

    def test_bimodal_insertion_mostly_distant(self):
        p = BrripPolicy(bits=2, bimodal_throttle=32)
        st = p.make_set_state(1)
        values = []
        for _ in range(64):
            p.on_fill(st, 0)
            values.append(st.rrpv[0])
        assert values.count(2) == 2          # 2 of 64 are "long"
        assert values.count(3) == 62

    def test_victim_ages_until_found(self):
        p = BrripPolicy(bits=2)
        st = p.make_set_state(2)
        st.rrpv[:] = [1, 2]
        v = p.choose_victim(st)
        assert v == 1                        # aged to 3 first
        assert st.rrpv == [2, 3]

    def test_scan_resistance_beats_lru(self):
        """A reused working set survives a one-off scan better under BRRIP.

        This is the classic RRIP property: distant insertion keeps scan
        blocks from displacing the re-referenced set.
        """
        def run(policy):
            cache = SetAssociativeCache(64, 16, 4, policy)  # 1 set, 4 ways
            ws = [0, 1, 2]
            for _ in range(8):       # establish re-reference behaviour
                for b in ws:
                    cache.access_line(b, False)
            for b in range(100, 112):  # scan
                cache.access_line(b, False)
            hits = 0
            for b in ws:
                hits += cache.access_line(b, False)
            return hits

        brrip_hits = run(BrripPolicy())
        lru_hits = run(LruPolicy())
        assert brrip_hits >= lru_hits
        assert brrip_hits > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BrripPolicy(bits=0)
        with pytest.raises(ValueError):
            BrripPolicy(bimodal_throttle=0)
