"""Tests for repro.core.ranks."""

import pytest

from repro.core.ranks import Rank, RankSpace, make_ranks, volume


class TestRank:
    def test_basic_rank(self):
        r = Rank("m", 100)
        assert r.size == 100
        assert r.traversal_size == 100
        assert not r.compressed

    def test_compressed_rank_effective_size(self):
        r = Rank("k", 1000, compressed=True, effective_size=8.5)
        assert r.size == 1000
        assert r.traversal_size == pytest.approx(8.5)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Rank("m", 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Rank("m", -4)

    def test_compressed_cannot_exceed_nominal(self):
        with pytest.raises(ValueError):
            Rank("k", 10, compressed=True, effective_size=20)

    def test_effective_defaults_to_size(self):
        r = Rank("n", 16)
        assert r.effective_size == 16.0

    def test_zero_effective_rejected(self):
        with pytest.raises(ValueError):
            Rank("k", 10, compressed=True, effective_size=0)

    def test_with_size(self):
        r = Rank("m", 100)
        r2 = r.with_size(50)
        assert r2.size == 50
        assert r2.name == "m"


class TestRankSpace:
    def test_add_and_get(self):
        s = RankSpace()
        r = s.add(Rank("m", 10))
        assert s.get("m") is r
        assert "m" in s
        assert len(s) == 1

    def test_conflicting_redefinition_rejected(self):
        s = RankSpace([Rank("m", 10)])
        with pytest.raises(ValueError):
            s.add(Rank("m", 20))

    def test_identical_redefinition_ok(self):
        s = RankSpace([Rank("m", 10)])
        s.add(Rank("m", 10))
        assert len(s) == 1

    def test_unknown_rank_raises(self):
        s = RankSpace()
        with pytest.raises(KeyError):
            s.get("zzz")

    def test_names_and_sizes(self):
        s = make_ranks({"m": 10, "n": 4})
        assert s.names() == ("m", "n")
        assert s.sizes() == {"m": 10, "n": 4}

    def test_make_ranks_compressed(self):
        s = make_ranks({"m": 100, "k": 100}, compressed={"k": 5})
        assert s.get("k").compressed
        assert s.get("k").traversal_size == 5
        assert not s.get("m").compressed


class TestVolume:
    def test_nominal_volume(self):
        ranks = [Rank("m", 10), Rank("n", 4)]
        assert volume(ranks) == 40

    def test_effective_volume_with_compression(self):
        ranks = [Rank("m", 10), Rank("k", 100, compressed=True, effective_size=2.5)]
        assert volume(ranks, effective=True) == pytest.approx(25.0)
        assert volume(ranks) == 1000

    def test_empty_volume_is_one(self):
        assert volume([]) == 1
