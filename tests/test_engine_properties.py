"""Property tests: engine invariants on randomized DAGs, and the
grid-vs-random tuner agreement property.

The random einsum-DAG generator (:mod:`repro.workloads.random_dag`)
produces arbitrary valid programs; these suites assert what must hold
for *every* such program:

* after any :meth:`ScheduleEngine.run`, CHORD's incrementally-maintained
  occupancy counter equals the O(tensors) audit recomputation;
* DRAM traffic is non-negative, and CHORD byte conservation holds
  (hits + misses == read bytes requested);
* the cache baselines move DRAM traffic in whole lines (the generator
  guarantees line-aligned tensor footprints, so any misalignment would
  be an engine bug);
* a tuner grid search and a full-budget random search agree on the best
  point whenever the random budget covers the grid.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import runner
from repro.buffers.brrip import BrripPolicy
from repro.buffers.lru import LruPolicy
from repro.hw.config import KIB, AcceleratorConfig
from repro.score.scheduler import Score, schedule_program
from repro.sim.engine import CacheEngine, EngineOptions, ScheduleEngine
from repro.tuner import GridStrategy, RandomStrategy, TuneSpace, tune
from repro.workloads.random_dag import RandomDagProblem, build_random_dag

#: Small SRAM so random programs actually contend for capacity.
CFG = AcceleratorConfig(sram_bytes=256 * KIB)

#: Problem-shape strategy: enough variety to hit PRELUDE spills, RIFF
#: steals, table exhaustion (no-retire), and swizzle charges.
PROBLEMS = st.builds(
    RandomDagProblem,
    seed=st.integers(0, 10_000),
    n_ops=st.integers(2, 18),
    fanout=st.integers(0, 5),
    skew=st.integers(0, 4),
)

OPTION_COMBOS = [
    EngineOptions(),
    EngineOptions(use_riff=False),
    EngineOptions(explicit_retire=False),
    EngineOptions(use_riff=False, explicit_retire=False, charge_swizzle=False),
]


class TestScheduleEngineProperties:
    @given(problem=PROBLEMS)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_audit_matches_incremental_counter(self, problem):
        dag = build_random_dag(problem)
        schedule = schedule_program(dag, CFG)
        for options in OPTION_COMBOS:
            engine = ScheduleEngine(CFG, options)
            engine.run(schedule)
            chord = engine.last_chord
            assert chord is not None
            assert chord.audit_used_bytes() == chord.used_bytes
            assert chord.used_bytes <= chord.capacity_bytes

    @given(problem=PROBLEMS)
    @settings(max_examples=40, deadline=None)
    def test_dram_traffic_non_negative_and_conserved(self, problem):
        dag = build_random_dag(problem)
        schedule = schedule_program(dag, CFG)
        for options in OPTION_COMBOS:
            engine = ScheduleEngine(CFG, options)
            result = engine.run(schedule)
            assert result.dram_read_bytes >= 0
            assert result.dram_write_bytes >= 0
            stats = engine.last_chord.stats
            # CHORD byte conservation: every missed read byte was fetched
            # from DRAM, and nothing else was (reads never over-fetch).
            assert stats.dram_read_bytes == stats.misses

    @given(problem=PROBLEMS, policy=st.sampled_from(["lru", "brrip"]))
    @settings(max_examples=25, deadline=None)
    def test_cache_engine_traffic_is_line_aligned(self, problem, policy):
        dag = build_random_dag(problem)
        # The generator guarantees line-aligned tensor footprints, so the
        # cache's whole-line transfers must keep traffic line-aligned.
        for t in dag.tensors:
            assert t.bytes % CFG.line_bytes == 0
        eng = CacheEngine(
            CFG, LruPolicy() if policy == "lru" else BrripPolicy(),
            granularity=1,
        )
        result = eng.run(dag)
        assert result.dram_read_bytes >= 0
        assert result.dram_write_bytes >= 0
        assert result.dram_read_bytes % CFG.line_bytes == 0
        assert result.dram_write_bytes % CFG.line_bytes == 0

    @given(problem=PROBLEMS)
    @settings(max_examples=15, deadline=None)
    def test_runs_are_reproducible(self, problem):
        dag = build_random_dag(problem)
        schedule = schedule_program(dag, CFG)
        a = ScheduleEngine(CFG).run(schedule)
        b = ScheduleEngine(CFG).run(schedule)
        assert a == b


class TestGridRandomAgreementProperty:
    @pytest.fixture(autouse=True)
    def _fresh_runner_state(self):
        runner.clear_cache()
        runner.reset_simulation_count()
        runner.set_store(None)
        yield
        runner.clear_cache()
        runner.set_store(None)

    @given(rand_seed=st.integers(0, 1000), dag_seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_full_budget_random_equals_grid_best(self, rand_seed, dag_seed):
        """When the random budget covers the whole grid, both strategies
        see the same evaluations and must name the same best point."""
        workload = f"rand/s={dag_seed}/ops=8/f=2/k=2"
        space = TuneSpace(chord_entries=(64, 8))
        grid = tune(workload, space=space, strategy=GridStrategy(),
                    base_cfg=CFG, objectives=("runtime", "dram"))
        rand = tune(workload, space=space,
                    strategy=RandomStrategy(budget=len(space), seed=rand_seed),
                    base_cfg=CFG, objectives=("runtime", "dram"))
        assert rand.best.point == grid.best.point
        assert rand.best.objectives == grid.best.objectives


class TestNoSharedDefaultInstances:
    """Regression for the shared default-instance arguments: every engine
    constructs its own options; experiment ``run()`` signatures resolve
    ``cfg=None`` to a fresh config per call."""

    def test_two_engines_never_alias_options(self):
        a = ScheduleEngine(CFG)
        b = ScheduleEngine(CFG)
        assert a.options is not b.options
        assert a.options == b.options

    def test_explicit_options_are_kept_by_reference(self):
        options = EngineOptions(use_riff=False)
        assert ScheduleEngine(CFG, options).options is options

    def test_score_instances_never_alias_options(self):
        assert Score().options is not Score().options

    def test_experiment_run_resolves_none_cfg_per_call(self):
        from repro.experiments import fig15_area_energy
        from repro.hw.config import default_config

        assert default_config(None) is not default_config(None)
        assert fig15_area_energy.run() == fig15_area_energy.run()
