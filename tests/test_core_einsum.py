"""Tests for repro.core.einsum."""

import pytest

from repro.core.einsum import EinsumOp, OpKind
from repro.core.ranks import Rank
from repro.core.tensor import csr_tensor, dense_tensor


def gemm(m=64, k=32, n=16, name="gemm"):
    rm, rk, rn = Rank("m", m), Rank("k", k), Rank("n", n)
    return EinsumOp(
        name=name,
        inputs=(dense_tensor("A", (rm, rk)), dense_tensor("B", (rk, rn))),
        output=dense_tensor("Z", (rm, rn)),
        contracted=("k",),
    )


class TestValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            EinsumOp(name="", inputs=(dense_tensor("A", (Rank("m", 4),)),),
                     output=dense_tensor("Z", (Rank("m", 4),)))

    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            EinsumOp(name="op", inputs=(),
                     output=dense_tensor("Z", (Rank("m", 4),)))

    def test_duplicate_inputs_rejected(self):
        t = dense_tensor("A", (Rank("m", 4),))
        with pytest.raises(ValueError):
            EinsumOp(name="op", inputs=(t, t),
                     output=dense_tensor("Z", (Rank("m", 4),)))

    def test_output_alias_needs_accumulate(self):
        x = dense_tensor("X", (Rank("m", 4),))
        with pytest.raises(ValueError):
            EinsumOp(name="op", inputs=(x,), output=x)
        # With accumulate semantics it is allowed.
        op = EinsumOp(name="op", inputs=(x,), output=x, accumulate_input="X")
        assert op.accumulate_input == "X"

    def test_contracted_rank_must_be_on_input(self):
        with pytest.raises(ValueError):
            EinsumOp(
                name="op",
                inputs=(dense_tensor("A", (Rank("m", 4),)),),
                output=dense_tensor("Z", (Rank("m", 4),)),
                contracted=("q",),
            )

    def test_contracted_rank_cannot_be_on_output(self):
        rm, rk = Rank("m", 4), Rank("k", 4)
        with pytest.raises(ValueError):
            EinsumOp(
                name="op",
                inputs=(dense_tensor("A", (rm, rk)),),
                output=dense_tensor("Z", (rm, rk)),
                contracted=("k",),
            )


class TestMetrics:
    def test_gemm_macs(self):
        assert gemm(64, 32, 16).macs == 64 * 32 * 16

    def test_spmm_macs_use_effective_extent(self):
        m = 1000
        nnz = 5000
        rk = Rank("k", m, compressed=True, effective_size=nnz / m)
        rm, rn = Rank("m", m), Rank("n", 8)
        op = EinsumOp(
            name="spmm",
            inputs=(csr_tensor("A", (rm, rk), nnz=nnz),
                    dense_tensor("P", (rk, rn))),
            output=dense_tensor("S", (rm, rn)),
            contracted=("k",),
        )
        assert op.macs == nnz * 8  # nnz * N

    def test_elementwise_macs(self):
        rm, rn = Rank("m", 100), Rank("n", 4)
        op = EinsumOp(
            name="ew",
            inputs=(dense_tensor("A", (rm, rn)),),
            output=dense_tensor("Z", (rm, rn)),
            kind=OpKind.ELEMENTWISE,
        )
        assert op.macs == 400

    def test_inverse_macs_include_cube(self):
        rn, rj, rp = Rank("n", 8), Rank("j", 8), Rank("np", 8)
        op = EinsumOp(
            name="inv",
            inputs=(dense_tensor("D", (rp, rj)), dense_tensor("G", (rj, rn))),
            output=dense_tensor("L", (rp, rn)),
            contracted=("j",),
            kind=OpKind.INVERSE,
        )
        assert op.macs == 8 ** 3 + 8 ** 3

    def test_io_bytes_cold(self):
        op = gemm(64, 32, 16)
        assert op.io_bytes_cold == (64 * 32 + 32 * 16 + 64 * 16) * 4

    def test_best_intensity_matches_eq3(self):
        op = gemm(64, 32, 16)
        expected = (64 * 32 * 16) / ((64 * 32 + 32 * 16 + 64 * 16) * 4)
        assert op.arithmetic_intensity_best == pytest.approx(expected)

    def test_all_ranks_dedup(self):
        op = gemm()
        assert tuple(r.name for r in op.all_ranks) == ("m", "k", "n")

    def test_uncontracted(self):
        assert gemm().uncontracted == ("m", "n")

    def test_rank_lookup(self):
        assert gemm().rank("k").size == 32
        with pytest.raises(KeyError):
            gemm().rank("zzz")

    def test_input_named(self):
        op = gemm()
        assert op.input_named("A").name == "A"
        with pytest.raises(KeyError):
            op.input_named("nope")
