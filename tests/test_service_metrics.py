"""Observability-layer tests: rate meters, the fair queue, priority
classification, structured request logs, the ``metrics`` wire op, load
shedding with client retry, multi-tenant fairness, and protocol-v4
byte-stability of the streamed sweep messages.

The unit tests pin the scheduling/counting primitives with injected
clocks and in-memory streams; the loopback tests drive a real daemon
over TCP the same way ``tests/test_service.py`` does (its harness is
imported here).  Shedding is made deterministic by exploiting the
dispatcher's gather window: with ``max_batch=1`` and a long
``batch_window_s`` the dispatcher sits on its first point while the
queue stays full, so an admission check during the window always sees
zero free slots — no sleeps, no racing the simulator.
"""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.baselines import runner
from repro.service import (
    FairQueue,
    Overloaded,
    RateMeter,
    RequestLog,
    classify_priority,
)
from repro.service.protocol import encode_message
from repro.service.scheduling import Overloaded as SchedOverloaded
from test_service import (
    BANDWIDTH_GB,
    CONFIGS,
    DISTINCT_KEYS,
    WORKLOAD,
    ServerThread,
    _reset_runner,
    submit_standard,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestRateMeter:
    def test_young_meter_divides_by_uptime_not_window(self):
        clock = FakeClock()
        meter = RateMeter(window_s=60.0, clock=clock)
        clock.t = 2.0
        meter.record(4)
        assert meter.rate() == pytest.approx(2.0)

    def test_old_events_fall_out_of_the_window(self):
        clock = FakeClock()
        meter = RateMeter(window_s=10.0, clock=clock)
        meter.record(100)
        clock.t = 11.0  # the burst is now outside the window
        meter.record(5)
        assert meter.rate() == pytest.approx(0.5)

    def test_total_is_lifetime_and_monotone(self):
        clock = FakeClock()
        meter = RateMeter(window_s=1.0, clock=clock)
        meter.record(3)
        clock.t = 100.0
        meter.record(2)
        assert meter.total == 5
        assert meter.rate() == pytest.approx(2.0)

    def test_nonpositive_records_are_ignored(self):
        meter = RateMeter(window_s=10.0, clock=FakeClock())
        meter.record(0)
        meter.record(-4)
        assert meter.total == 0 and meter.rate() == 0.0


class TestClassifyPriority:
    def test_explicit_choice_wins_over_size(self):
        assert classify_priority("bulk", 1) == "bulk"
        assert classify_priority("interactive", 10_000) == "interactive"

    def test_size_decides_when_unspecified(self):
        assert classify_priority(None, 64) == "interactive"
        assert classify_priority(None, 65) == "bulk"

    def test_threshold_is_configurable(self):
        assert classify_priority(None, 5, bulk_threshold=4) == "bulk"


def run(coro):
    return asyncio.run(coro)


class TestFairQueue:
    def test_round_robin_interleaves_tenants(self):
        async def go():
            q = FairQueue(10)
            for item in ("a1", "a2", "a3"):
                q.put_nowait(item, client="alice")
            q.put_nowait("b1", client="bob")
            return [q.get_nowait() for _ in range(4)]

        # alice's backlog does not starve bob: he is served after one
        # alice entry, not after three.
        assert run(go()) == ["a1", "b1", "a2", "a3"]

    def test_weights_grant_longer_turns(self):
        async def go():
            q = FairQueue(10, weights={"alice": 2})
            for item in ("a1", "a2", "a3"):
                q.put_nowait(item, client="alice")
            q.put_nowait("b1", client="bob")
            return [q.get_nowait() for _ in range(4)]

        assert run(go()) == ["a1", "a2", "b1", "a3"]

    def test_interactive_jumps_own_bulk_backlog(self):
        async def go():
            q = FairQueue(10)
            q.put_nowait("sweep", client="alice", priority="bulk")
            q.put_nowait("probe", client="alice", priority="interactive")
            return [q.get_nowait() for _ in range(2)]

        assert run(go()) == ["probe", "sweep"]

    def test_quota_sheds_one_tenant_but_not_others(self):
        async def go():
            q = FairQueue(10, quota=2)
            q.put_nowait("a1", client="alice")
            q.put_nowait("a2", client="alice")
            assert q.free_slots("alice") == 0
            with pytest.raises(SchedOverloaded) as exc_info:
                q.put_nowait("a3", client="alice")
            assert "quota" in str(exc_info.value)
            q.put_nowait("b1", client="bob")  # bob is unaffected
            return q.qsize(), q.client_depths()

        assert run(go()) == (3, {"alice": 2, "bob": 1})

    def test_full_queue_sheds_with_retry_hint(self):
        async def go():
            q = FairQueue(2)
            q.put_nowait("x", client="a")
            q.put_nowait("y", client="b")
            with pytest.raises(SchedOverloaded) as exc_info:
                q.put_nowait("z", client="c")
            assert "queue full" in str(exc_info.value)
            return exc_info.value.retry_after_s

        hint = run(go())
        assert 0.1 <= hint <= 30.0

    def test_blocking_put_waits_for_a_slot(self):
        async def go():
            q = FairQueue(1)
            q.put_nowait("first", client="a")
            admitted = []

            async def putter():
                await q.put("second", client="a")
                admitted.append(True)

            task = asyncio.ensure_future(putter())
            await asyncio.sleep(0)
            assert not admitted  # blocked: queue is full
            assert q.get_nowait() == "first"
            await task
            return admitted and q.get_nowait() == "second"

        assert run(go())

    def test_get_blocks_until_an_item_arrives(self):
        async def go():
            q = FairQueue(4)
            task = asyncio.ensure_future(q.get())
            await asyncio.sleep(0)
            assert not task.done()
            q.put_nowait("late", client="a")
            return await task

        assert run(go()) == "late"

    def test_get_nowait_empty_raises_queue_empty(self):
        async def go():
            q = FairQueue(4)
            with pytest.raises(asyncio.QueueEmpty):
                q.get_nowait()

        run(go())

    def test_drained_lane_leaves_the_rotation(self):
        async def go():
            q = FairQueue(10)
            q.put_nowait("a1", client="alice")
            q.put_nowait("b1", client="bob")
            q.get_nowait()  # alice drained and removed
            q.put_nowait("b2", client="bob")
            return [q.get_nowait() for _ in range(2)]

        # No empty alice lane burning turns: bob drains back-to-back.
        assert run(go()) == ["b1", "b2"]

    def test_exports_are_one_class(self):
        # The client raises its own Overloaded (a JobFailed subclass);
        # the queue raises the scheduling one.  Both are exported, the
        # package-level name is the client-facing one.
        assert Overloaded is not SchedOverloaded


class TestRequestLog:
    def _records(self, fn):
        stream = io.StringIO()
        fn(RequestLog(stream))
        return [json.loads(line) for line in
                stream.getvalue().splitlines()]

    def test_one_compact_json_line_per_request(self):
        [rec] = self._records(lambda log: log.log(
            "sweep", client="alice", job="j1", points=4, sims=2,
            hits=1, coalesced=1, duration_s=0.25, outcome="done"))
        assert rec["client"] == "alice" and rec["op"] == "sweep"
        assert rec["job"] == "j1"
        assert (rec["points"], rec["sims"], rec["hits"],
                rec["coalesced"]) == (4, 2, 1, 1)
        assert rec["duration_s"] == 0.25 and rec["outcome"] == "done"
        assert "error" not in rec and isinstance(rec["ts"], float)

    def test_trace_fields_ride_along_only_when_traced(self):
        [traced, untraced] = self._records(lambda log: (
            log.log("points", trace={"trace_id": "ab" * 8,
                                     "span_id": "cd" * 4,
                                     "parent_span": "ef" * 4}),
            log.log("points")))
        assert traced["trace_id"] == "ab" * 8
        assert traced["span_id"] == "cd" * 4
        assert traced["parent_span"] == "ef" * 4
        for field in ("trace_id", "span_id", "parent_span"):
            assert field not in untraced

    def test_anonymous_client_and_error_fields(self):
        [rec] = self._records(lambda log: log.log(
            "tune", outcome="shed", error="overloaded: queue full"))
        assert rec["client"] == "anon"
        assert rec["outcome"] == "shed"
        assert rec["error"] == "overloaded: queue full"

    def test_dead_stream_never_raises(self):
        stream = io.StringIO()
        log = RequestLog(stream)
        stream.close()
        log.log("ping")  # must not blow up the serving path


@pytest.fixture
def server(tmp_path):
    _reset_runner()
    with ServerThread(cache_dir=str(tmp_path / "cache")) as srv:
        yield srv
    _reset_runner()


class TestMetricsOp:
    def test_counters_are_monotone_under_concurrent_clients(self, server):
        outcomes = []

        def one_client(name):
            with server.client(client_id=name) as client:
                outcomes.append(submit_standard(client))

        threads = [threading.Thread(target=one_client, args=(name,))
                   for name in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == 2

        with server.client() as client:
            first = client.metrics()
            second = client.metrics()

        assert first["type"] == "metrics" and first["role"] == "shard"
        assert first["protocol"] >= 5
        # 2 clients x 4 points sharing DISTINCT_KEYS traffic keys: each
        # key was simulated exactly once, and the second job's claims
        # were answered by a warm hit or by coalescing onto the
        # in-flight simulation (the split between the two is a
        # scheduling race; their sum is not — claims are per distinct
        # key, bandwidth variants dedup inside the job).
        assert first["simulations"] == DISTINCT_KEYS
        assert (first["hits_total"] + first["coalesced_total"]
                == DISTINCT_KEYS)
        assert first["shed_total"] == 0
        assert first["points_streamed"] == 8
        assert first["rates"]["sims_per_s"] > 0
        assert first["rates"]["window_s"] > 0
        assert first["queue_depth"] == 0 and first["max_pending"] >= 1
        store = first["store"]
        assert 0.0 <= store["hit_rate"] <= 1.0
        assert store["corrupt"] == 0
        # Polling must never move a counter backwards.
        for key in ("points_streamed", "simulations", "hits_total",
                    "coalesced_total", "shed_total"):
            assert second[key] >= first[key]
        assert second["uptime_s"] >= first["uptime_s"]

    def test_warm_resubmit_counts_as_hits_not_coalesced(self, server):
        with server.client(client_id="alice") as client:
            submit_standard(client)
            before = client.metrics()
            outcome = submit_standard(client)
            after = client.metrics()
        assert outcome.simulations == 0
        # Nothing was in flight on the resubmit, so every distinct-key
        # claim is a warm store hit — the split distinguishes exactly
        # this from coalescing behind another client's in-flight work.
        assert after["hits_total"] == before["hits_total"] + DISTINCT_KEYS
        assert after["coalesced_total"] == before["coalesced_total"]
        assert after["simulations"] == before["simulations"]

    def test_metrics_cli_verb_renders_and_emits_json(self, server, capsys):
        from repro.cli import main

        with server.client() as client:
            submit_standard(client)
        assert main(["metrics", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "Metrics: shard" in out
        assert "sims/s:" in out and "warm hits:" in out
        assert main(["metrics", "--port", str(server.port),
                     "--json"]) == 0
        msg = json.loads(capsys.readouterr().out)
        assert msg["simulations"] == DISTINCT_KEYS


class TestLoadShedding:
    @pytest.fixture
    def tiny_server(self, tmp_path):
        # max_pending=1 + a long gather window: after the dispatcher
        # takes its single-point batch it sleeps in the window, so a
        # second queued point keeps the queue pinned full for seconds —
        # admission checks during the window deterministically shed.
        _reset_runner()
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_pending=1, max_batch=1,
                          batch_window_s=2.0) as srv:
            yield srv
        _reset_runner()

    def _fill_queue(self, srv):
        """Submit a 2-point interactive sweep in the background and wait
        until its second point is sitting in the (size-1) queue."""
        done = threading.Event()
        outcome = {}

        def bulk_filler():
            with srv.client(client_id="filler") as client:
                outcome["filler"] = client.submit_sweep(
                    [WORKLOAD], configs=[CONFIGS[0]],
                    sram_mb=[1.0, 2.0], bandwidth_gb=[BANDWIDTH_GB[0]])
            done.set()

        thread = threading.Thread(target=bulk_filler)
        thread.start()
        deadline = time.monotonic() + 30
        while srv.service._queue is None \
                or srv.service._queue.qsize() < 1:
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.005)
        return thread, done, outcome

    def test_bulk_is_shed_with_typed_error_then_retry_succeeds(
            self, tiny_server):
        thread, _, _ = self._fill_queue(tiny_server)
        try:
            with tiny_server.client(client_id="bulky") as client:
                with pytest.raises(Overloaded) as exc_info:
                    client.submit_sweep(
                        [WORKLOAD], configs=[CONFIGS[1]],
                        bandwidth_gb=list(BANDWIDTH_GB),
                        priority="bulk", overload_retries=0)
                assert exc_info.value.retry_after_s > 0
                assert "overloaded" in str(exc_info.value)

                # Same submission with retries enabled: backs off past
                # the gather windows, is admitted, and completes without
                # re-simulating anything another client already ran.
                retries = []
                outcome = client.submit_sweep(
                    [WORKLOAD], configs=[CONFIGS[1]],
                    bandwidth_gb=list(BANDWIDTH_GB),
                    priority="bulk", overload_retries=50,
                    on_retry=lambda n, delay, exc:
                        retries.append((n, delay)))
                assert retries, "retry path never fired"
                assert all(delay <= 60.0 for _, delay in retries)
                assert len(outcome.points) == 2
                metrics = client.metrics()
            assert metrics["shed_total"] >= 2  # the no-retry try + >=1 retry
            # The shed-then-retry cycle duplicated no simulations:
            # every key in the store was simulated exactly once.
            assert metrics["simulations"] == 3  # 2 filler srams + 1 CELLO
        finally:
            thread.join(timeout=120)
            assert not thread.is_alive()

    def test_tune_is_shed_before_bulk_capacity_is_reached(
            self, tiny_server):
        # Tune searches are the lowest tier: with max_pending=1 the tune
        # shed threshold is one queued entry, which _fill_queue pins.
        from repro.service.client import JobFailed

        thread, _, _ = self._fill_queue(tiny_server)
        try:
            with tiny_server.client(client_id="tuner") as client:
                with pytest.raises(JobFailed) as exc_info:
                    client.submit_tune(WORKLOAD, strategy="grid",
                                       budget=4, sram_mb=[4.0],
                                       entries=[64])
            assert "overloaded" in str(exc_info.value)
        finally:
            thread.join(timeout=120)
            assert not thread.is_alive()

    def test_interactive_is_never_shed_it_queues(self, tiny_server):
        thread, _, _ = self._fill_queue(tiny_server)
        try:
            with tiny_server.client(client_id="probe") as client:
                outcome = client.submit_sweep(
                    [WORKLOAD], configs=[CONFIGS[1]],
                    bandwidth_gb=[BANDWIDTH_GB[0]],
                    overload_retries=0)  # would raise if shed
            assert len(outcome.points) == 1
        finally:
            thread.join(timeout=120)
            assert not thread.is_alive()


class TestFairnessUnderLoad:
    def test_interactive_tenant_is_not_starved_by_a_bulk_sweep(
            self, tmp_path):
        """Two tenants: one submits a wide bulk sweep, the other a
        1-point probe after the bulk backlog is queued.  Weighted
        round-robin must finish the probe long before the sweep — under
        the old single FIFO the probe waited out the whole backlog."""
        _reset_runner()
        finished = {}
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_batch=1, batch_window_s=0.0) as srv:
            bulk_started = threading.Event()

            def bulk_tenant():
                with srv.client(client_id="bulk-co") as client:
                    def saw_accept(msg):
                        if msg.get("type") == "accepted":
                            bulk_started.set()
                    outcome = client.submit_sweep(
                        [WORKLOAD], configs=list(CONFIGS),
                        sram_mb=[float(m) for m in range(1, 13)],
                        bandwidth_gb=[BANDWIDTH_GB[0]],
                        priority="bulk", on_message=saw_accept)
                finished["bulk"] = time.monotonic()
                finished["bulk_points"] = len(outcome.points)

            thread = threading.Thread(target=bulk_tenant)
            thread.start()
            assert bulk_started.wait(timeout=60)
            with srv.client(client_id="interactive-co") as client:
                probe = client.submit_sweep(
                    [WORKLOAD], configs=[CONFIGS[0]], sram_mb=[16.0],
                    bandwidth_gb=[BANDWIDTH_GB[0]])
            finished["probe"] = time.monotonic()
            thread.join(timeout=300)
            assert not thread.is_alive()
        _reset_runner()
        assert len(probe.points) == 1
        assert finished["bulk_points"] == 24
        # The probe landed mid-backlog and still finished first.
        assert finished["probe"] < finished["bulk"]


class TestRequestLogWiring:
    def test_server_logs_submissions_and_queries(self, tmp_path):
        _reset_runner()
        stream = io.StringIO()
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          request_log=RequestLog(stream)) as srv:
            with srv.client(client_id="alice") as client:
                client.ping()
                submit_standard(client)
        _reset_runner()
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        by_op = {rec["op"]: rec for rec in records}
        assert by_op["ping"]["client"] == "alice"
        assert by_op["ping"]["outcome"] == "ok"
        assert by_op["ping"]["duration_s"] >= 0
        sweep = by_op["sweep"]
        assert sweep["client"] == "alice" and sweep["outcome"] == "done"
        assert sweep["points"] == 4
        assert sweep["sims"] == DISTINCT_KEYS
        assert sweep["job"].startswith("j")
        assert sweep["duration_s"] > 0
        # Untraced traffic never grows trace fields in its records.
        assert "trace_id" not in sweep and "trace_id" not in by_op["ping"]


class TestProtocolV4Stability:
    def _exchange(self, port, request):
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=60) as sock:
            sock.sendall(encode_message(request))
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        return [json.loads(line) for line in data.split(b"\n")
                if line.strip()]

    def test_v4_sweep_replies_carry_no_new_fields(self, server):
        """A protocol-v4 client sends no ``client``/``priority`` and
        must read back exactly the v4 message shapes — the scheduling
        and metrics work must not leak fields into the stream."""
        messages = self._exchange(server.port, {
            "op": "sweep", "workloads": [WORKLOAD],
            "configs": list(CONFIGS),
            "bandwidth_gb": list(BANDWIDTH_GB)})
        by_type = {}
        for msg in messages:
            by_type.setdefault(msg["type"], []).append(msg)
        [accepted] = by_type["accepted"]
        assert set(accepted) == {"type", "job", "kind", "points"}
        assert len(by_type["result"]) == 4
        for result in by_type["result"]:
            assert set(result) == {"type", "job", "index", "done",
                                   "total", "point", "result"}
        [done] = by_type["done"]
        assert set(done) == {"type", "job", "points", "simulations",
                             "hits", "coalesced", "elapsed_s"}
        assert done["points"] == 4
        assert done["simulations"] == DISTINCT_KEYS

    def test_v4_stats_and_jobs_still_answer(self, server):
        [stats] = self._exchange(server.port, {"op": "stats"})
        assert stats["type"] == "stats"
        [jobs] = self._exchange(server.port, {"op": "jobs"})
        assert jobs["type"] == "jobs"

    def test_bad_client_field_is_a_protocol_error_not_a_hang(
            self, server):
        [err] = self._exchange(server.port, {
            "op": "sweep", "workloads": [WORKLOAD], "client": 42})
        assert err["type"] == "error"
        assert "client" in err["error"]
