"""Tests for the schedule-driven engine (CELLO executor) and the cache
engine: conservation invariants and option behaviour."""

import pytest

from repro.buffers.lru import LruPolicy
from repro.hw.config import AcceleratorConfig
from repro.score.scheduler import Score, ScoreOptions
from repro.sim.engine import CacheEngine, EngineOptions, ScheduleEngine
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.gnn import build_gnn_dag, protein_problem
from repro.workloads.matrices import FV1
from repro.workloads.registry import resnet_workload

CFG = AcceleratorConfig()


def cg_dag(n=16, iters=2, matrix=FV1):
    return build_cg_dag(CgProblem(matrix=matrix, n=n, iterations=iters))


class TestScheduleEngine:
    def test_inputs_are_read_at_least_once(self):
        dag = cg_dag()
        sched = Score(CFG).schedule(dag)
        r = ScheduleEngine(CFG).run(sched)
        # Cold compulsory traffic: every program input must be fetched once.
        cold = sum(dag.tensor(t).bytes for t in dag.program_inputs())
        assert r.dram_read_bytes >= cold * 0.99

    def test_outputs_are_written_exactly_once_when_fitting(self):
        # Small problem: everything resident; writes = program outputs only.
        dag = cg_dag(n=1, iters=2)
        sched = Score(CFG).schedule(dag)
        r = ScheduleEngine(CFG).run(sched)
        outs = sum(dag.tensor(t).bytes for t in dag.program_outputs())
        assert r.dram_write_bytes == outs

    def test_traffic_never_exceeds_oracle(self):
        """CELLO can only remove traffic relative to the op-by-op oracle."""
        from repro.baselines.flexagon import oracle_traffic

        for n in (1, 16):
            dag = cg_dag(n=n, iters=3)
            sched = Score(CFG).schedule(dag)
            r = ScheduleEngine(CFG).run(sched)
            reads, writes = oracle_traffic(dag)
            assert r.dram_bytes <= reads + writes

    def test_riff_off_is_never_better(self):
        dag = cg_dag(n=16, iters=3)
        sched = Score(CFG).schedule(dag)
        with_riff = ScheduleEngine(CFG, EngineOptions(use_riff=True)).run(sched)
        without = ScheduleEngine(CFG, EngineOptions(use_riff=False)).run(sched)
        assert with_riff.dram_bytes <= without.dram_bytes

    def test_no_retire_is_never_better(self):
        dag = cg_dag(n=16, iters=3)
        sched = Score(CFG).schedule(dag)
        retire = ScheduleEngine(CFG, EngineOptions(explicit_retire=True)).run(sched)
        hoard = ScheduleEngine(
            CFG, EngineOptions(explicit_retire=False, chord_entries=1024)
        ).run(sched)
        assert retire.dram_bytes <= hoard.dram_bytes

    def test_macs_independent_of_engine_options(self):
        dag = cg_dag()
        sched = Score(CFG).schedule(dag)
        a = ScheduleEngine(CFG).run(sched)
        b = ScheduleEngine(CFG, EngineOptions(use_riff=False)).run(sched)
        assert a.total_macs == b.total_macs == sum(op.macs for op in dag.ops)

    def test_onchip_access_accounting(self):
        dag = cg_dag()
        sched = Score(CFG).schedule(dag)
        r = ScheduleEngine(CFG).run(sched)
        assert set(r.onchip_accesses) == {"chord", "rf", "pipeline"}
        assert r.onchip_accesses["chord"] > 0
        assert r.onchip_accesses["pipeline"] > 0  # realized pipelines

    def test_resnet_intermediates_never_touch_dram(self):
        dag = resnet_workload().build()
        sched = Score(CFG).schedule(dag)
        r = ScheduleEngine(CFG).run(sched)
        inputs = sum(dag.tensor(t).bytes for t in dag.program_inputs())
        outputs = sum(dag.tensor(t).bytes for t in dag.program_outputs())
        assert r.dram_bytes == inputs + outputs

    def test_gnn_single_consumer_input_not_reinserted(self):
        dag = build_gnn_dag(protein_problem())
        sched = Score(CFG).schedule(dag)
        r = ScheduleEngine(CFG).run(sched)
        # X and Adj are read once; AX pipelines; H drains once.
        inputs = sum(dag.tensor(t).bytes for t in dag.program_inputs())
        outputs = sum(dag.tensor(t).bytes for t in dag.program_outputs())
        assert r.dram_bytes == inputs + outputs


class TestCacheEngine:
    def test_granularity_preserves_shape(self):
        """Coarsened simulation must stay within ~25% of exact traffic for
        streaming workloads (the coarsening contract)."""
        dag = cg_dag(n=16, iters=1)
        exact = CacheEngine(CFG, LruPolicy(), granularity=1).run(dag)
        coarse = CacheEngine(CFG, LruPolicy(), granularity=8).run(dag)
        ratio = coarse.dram_bytes / exact.dram_bytes
        assert 0.75 < ratio < 1.25

    def test_auto_granularity_used_when_unset(self):
        dag = cg_dag(n=1, iters=1)
        r = CacheEngine(CFG, LruPolicy()).run(dag)
        assert r.dram_bytes > 0

    def test_cache_traffic_at_least_compulsory(self):
        dag = cg_dag(n=16, iters=1)
        r = CacheEngine(CFG, LruPolicy(), granularity=4).run(dag)
        distinct = sum(t.bytes for t in dag.tensors)
        assert r.dram_read_bytes >= 0.9 * distinct
