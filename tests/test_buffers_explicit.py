"""Tests for the explicit buffers: scratchpad, buffet, pipeline buffer, RF."""

import pytest

from repro.buffers.buffet import Buffet, BuffetError
from repro.buffers.pipeline_buffer import PipelineBuffer, PipelineBufferError
from repro.buffers.register_file import RegisterFile, RegisterFileError
from repro.buffers.scratchpad import AllocationError, Scratchpad


class TestScratchpad:
    def test_allocate_free_cycle(self):
        sp = Scratchpad(100)
        sp.allocate("a", 60)
        assert sp.used_bytes == 60
        sp.free("a")
        assert sp.used_bytes == 0

    def test_overflow_raises(self):
        sp = Scratchpad(100)
        sp.allocate("a", 60)
        with pytest.raises(AllocationError):
            sp.allocate("b", 50)

    def test_double_allocate_raises(self):
        sp = Scratchpad(100)
        sp.allocate("a", 10)
        with pytest.raises(AllocationError):
            sp.allocate("a", 10)

    def test_free_unknown_raises(self):
        with pytest.raises(AllocationError):
            Scratchpad(100).free("a")

    def test_fill_and_drain_count_dram_traffic(self):
        sp = Scratchpad(100)
        sp.allocate("a", 40)
        sp.fill("a")
        sp.drain("a", 10)
        assert sp.stats.dram_read_bytes == 40
        assert sp.stats.dram_write_bytes == 10

    def test_fill_beyond_allocation_raises(self):
        sp = Scratchpad(100)
        sp.allocate("a", 40)
        with pytest.raises(AllocationError):
            sp.fill("a", 50)

    def test_touch_is_free_of_dram(self):
        sp = Scratchpad(100)
        sp.allocate("a", 40)
        sp.touch("a")
        assert sp.stats.dram_bytes == 0
        assert sp.stats.hits == 1


class TestBuffet:
    def test_fill_read_shrink_cycle(self):
        b = Buffet(4)
        b.fill(3)
        b.read(0)
        b.read(2)
        b.shrink(2)
        assert b.occupancy == 1
        assert b.credits == 3

    def test_fill_blocks_at_capacity(self):
        b = Buffet(2)
        b.fill(2)
        assert not b.can_fill(1)
        with pytest.raises(BuffetError):
            b.fill(1)

    def test_read_outside_window_raises(self):
        b = Buffet(4)
        b.fill(2)
        b.shrink(1)
        with pytest.raises(BuffetError):
            b.read(0)  # already retired
        with pytest.raises(BuffetError):
            b.read(2)  # not yet filled

    def test_shrink_beyond_occupancy_raises(self):
        b = Buffet(4)
        b.fill(1)
        with pytest.raises(BuffetError):
            b.shrink(2)

    def test_sliding_window_indices(self):
        b = Buffet(2)
        for i in range(10):
            b.fill(1)
            b.read(i)
            b.shrink(1)
        assert b.head == b.tail == 10


class TestPipelineBuffer:
    def test_stage_double_buffers(self):
        pb = PipelineBuffer(100)
        assert pb.can_stage(50)
        assert not pb.can_stage(51)
        pb.stage(40)
        assert pb.used_bytes == 80
        pb.release_stage()
        assert pb.used_bytes == 0

    def test_stage_overflow_raises(self):
        with pytest.raises(PipelineBufferError):
            PipelineBuffer(100).stage(60)

    def test_hold_and_release(self):
        pb = PipelineBuffer(100)
        pb.hold("T0", 30, release_stage=3)
        pb.hold("T0", 30, release_stage=4)
        assert pb.held_bytes == 60
        freed = pb.release_holds(3)
        assert freed == 30
        assert pb.held_bytes == 30
        freed = pb.release_holds(10)
        assert freed == 30
        assert pb.held_bytes == 0

    def test_can_hold_accounts_for_depth(self):
        pb = PipelineBuffer(100)
        assert pb.can_hold(20, depth=3)      # (3+2)*20 = 100
        assert not pb.can_hold(20, depth=4)  # 120 > 100

    def test_hold_overflow_raises(self):
        pb = PipelineBuffer(50)
        with pytest.raises(PipelineBufferError):
            pb.hold("T", 60, 1)


class TestRegisterFile:
    def test_load_and_stream(self):
        rf = RegisterFile(1024)
        rf.load("Lambda", 256)
        assert rf.is_resident("Lambda")
        rf.stream("Lambda", times=5)
        assert rf.stats.hits == 5

    def test_load_too_big_raises(self):
        rf = RegisterFile(100)
        with pytest.raises(RegisterFileError):
            rf.load("big", 200)

    def test_stream_unloaded_raises(self):
        with pytest.raises(RegisterFileError):
            RegisterFile(100).stream("x")

    def test_reload_is_idempotent(self):
        rf = RegisterFile(100)
        rf.load("t", 60)
        rf.load("t", 60)
        assert rf.used_bytes == 60

    def test_evict_frees_space(self):
        rf = RegisterFile(100)
        rf.load("a", 60)
        rf.evict("a")
        rf.load("b", 80)
        assert rf.used_bytes == 80
