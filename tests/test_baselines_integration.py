"""Integration tests: the Table IV configurations must reproduce the
paper's qualitative results (who wins, where, and why).

These are the reproduction's acceptance tests — each assertion corresponds
to a sentence in the paper's evaluation section.
"""

import pytest

from repro.baselines.configs import config_names, run_config
from repro.baselines.runner import clear_cache, run_matrix, run_workload_config
from repro.hw.config import AcceleratorConfig, MIB
from repro.sim.results import geomean
from repro.workloads.matrices import FV1, SHALLOW_WATER1
from repro.workloads.registry import (
    all_gnn_workloads,
    bicgstab_workload,
    cg_workload,
    resnet_workload,
)

CFG = AcceleratorConfig()


@pytest.fixture(scope="module")
def cg_fv1():
    w = cg_workload(FV1, n=16, iterations=3)
    return {
        c: run_workload_config(w, c, CFG)
        for c in ("Flexagon", "FLAT", "SET", "PRELUDE-only", "CELLO")
    }


@pytest.fixture(scope="module")
def cg_sw16():
    w = cg_workload(SHALLOW_WATER1, n=16, iterations=10)
    return {
        c: run_workload_config(w, c, CFG)
        for c in ("Flexagon", "FLAT", "PRELUDE-only", "CELLO")
    }


@pytest.fixture(scope="module")
def cg_sw1():
    w = cg_workload(SHALLOW_WATER1, n=1, iterations=10)
    return {
        c: run_workload_config(w, c, CFG)
        for c in ("Flexagon", "FLAT", "PRELUDE-only", "CELLO")
    }


class TestCgOrdering:
    def test_flat_equals_flexagon_on_cg(self, cg_fv1):
        """'Works that only consider pipelining ... are not beneficial
        here': every CG intermediate has a delayed downstream consumer."""
        assert cg_fv1["FLAT"].dram_bytes == cg_fv1["Flexagon"].dram_bytes

    def test_set_equals_flat_on_cg(self, cg_fv1):
        """SET 'performs the same as FLAT and Flexagon on CG' — CG needs
        delayed writeback, which SET lacks."""
        assert cg_fv1["SET"].dram_bytes == cg_fv1["FLAT"].dram_bytes

    def test_cello_beats_everything_on_cg(self, cg_fv1):
        for other in ("Flexagon", "FLAT", "SET"):
            assert cg_fv1["CELLO"].dram_bytes < cg_fv1[other].dram_bytes

    def test_cello_speedup_is_substantial(self, cg_fv1):
        assert cg_fv1["CELLO"].speedup_over(cg_fv1["Flexagon"]) > 2.0

    def test_prelude_only_between_baseline_and_cello(self, cg_sw16):
        pre = cg_sw16["PRELUDE-only"].dram_bytes
        assert cg_sw16["CELLO"].dram_bytes <= pre <= cg_sw16["Flexagon"].dram_bytes

    def test_riff_beats_prelude_only(self, cg_sw16):
        """Fig. 16(c): RIFF keeps frequently-reused tensors resident."""
        assert cg_sw16["CELLO"].dram_bytes < cg_sw16["PRELUDE-only"].dram_bytes

    def test_prelude_closer_to_cello_at_n1(self, cg_sw1, cg_sw16):
        """Fig. 16(c): PRELUDE-only benefits from tensors small relative to
        the SRAM."""
        import math

        def position(results):
            flex = results["Flexagon"].dram_bytes
            cello = results["CELLO"].dram_bytes
            pre = results["PRELUDE-only"].dram_bytes
            return (math.log(flex) - math.log(pre)) / (math.log(flex) - math.log(cello))

        assert position(cg_sw1) > position(cg_sw16)


class TestGnn:
    def test_cello_matches_flat_on_gnn(self):
        """Sec. VII-B1: 'CELLO achieves the same performance as FLAT'."""
        for w in all_gnn_workloads():
            flat = run_workload_config(w, "FLAT", CFG)
            cello = run_workload_config(w, "CELLO", CFG)
            assert cello.dram_bytes <= flat.dram_bytes
            assert cello.dram_bytes >= 0.9 * flat.dram_bytes

    def test_pipelining_beats_op_by_op_on_gnn(self):
        for w in all_gnn_workloads():
            flex = run_workload_config(w, "Flexagon", CFG)
            flat = run_workload_config(w, "FLAT", CFG)
            assert flat.dram_bytes < flex.dram_bytes


class TestResNet:
    @pytest.fixture(scope="class")
    def res(self):
        w = resnet_workload()
        return {
            c: run_workload_config(w, c, CFG)
            for c in ("Flexagon", "FLAT", "SET", "CELLO")
        }

    def test_set_equals_cello_on_resnet(self, res):
        """Fig. 16(a): SET handles the delayed-hold skip connection."""
        assert res["SET"].dram_bytes == res["CELLO"].dram_bytes

    def test_flat_misses_the_skip_connection(self, res):
        assert res["FLAT"].dram_bytes > res["SET"].dram_bytes

    def test_flexagon_worst(self, res):
        assert res["Flexagon"].dram_bytes > res["FLAT"].dram_bytes

    def test_compute_bound_at_1tbs(self, res):
        """At 1 TB/s ResNet is compute bound: all pipelined configs tie."""
        assert res["CELLO"].time_s == pytest.approx(res["FLAT"].time_s)
        assert not res["CELLO"].memory_bound

    def test_flexagon_memory_bound_at_250gbs(self):
        w = resnet_workload()
        slow = CFG.with_bandwidth(250e9)
        flex = run_workload_config(w, "Flexagon", slow)
        cello = run_workload_config(w, "CELLO", slow)
        assert flex.time_s > cello.time_s


class TestBicgstab:
    def test_cello_wins_on_bicgstab(self):
        w = bicgstab_workload(FV1, n=1, iterations=5)
        flex = run_workload_config(w, "Flexagon", CFG)
        flat = run_workload_config(w, "FLAT", CFG)
        cello = run_workload_config(w, "CELLO", CFG)
        assert cello.dram_bytes < flat.dram_bytes
        assert cello.dram_bytes < flex.dram_bytes


class TestSramSweep:
    def test_bigger_chord_never_hurts(self):
        w = cg_workload(SHALLOW_WATER1, n=16, iterations=5)
        traffic = []
        for sram in (1 * MIB, 4 * MIB, 16 * MIB):
            r = run_workload_config(w, "CELLO", CFG.with_sram(sram))
            traffic.append(r.dram_bytes)
        assert traffic[0] >= traffic[1] >= traffic[2]
        assert traffic[0] > traffic[2]  # capacity matters at N=16

    def test_n1_near_compulsory_floor_by_16mb(self):
        """Fig. 16(b): at N=1 a large-enough CHORD reaches the compulsory
        traffic floor (cold inputs + final outputs).

        Deviation note: the paper says 4 MB already suffices at N=1; in our
        model shallow_water1's CSR matrix (2.9 MB) plus the active vectors
        slightly exceed the 4 MB CHORD data array, so full saturation
        arrives at 16 MB (recorded in EXPERIMENTS.md).
        """
        w = cg_workload(SHALLOW_WATER1, n=1, iterations=5)
        dag = w.build()
        floor = sum(dag.tensor(t).bytes for t in dag.program_inputs())
        floor += sum(dag.tensor(t).bytes for t in dag.program_outputs())
        t16 = run_workload_config(w, "CELLO", CFG.with_sram(16 * MIB)).dram_bytes
        assert t16 <= floor * 1.05


class TestCaches:
    def test_cache_baselines_below_cello(self):
        w = cg_workload(FV1, n=16, iterations=3)
        cello = run_workload_config(w, "CELLO", CFG)
        for c in ("Flex+LRU", "Flex+BRRIP"):
            r = run_workload_config(w, c, CFG, cache_granularity=4)
            assert r.dram_bytes > cello.dram_bytes

    def test_caches_below_explicit_on_large_working_sets(self):
        """Fig. 12: 'LRU and BRRIP perform worse than best case schedule
        with explicit management' once the working set exceeds the cache."""
        w = cg_workload(SHALLOW_WATER1, n=16, iterations=3)
        flex = run_workload_config(w, "Flexagon", CFG)
        lru = run_workload_config(w, "Flex+LRU", CFG)
        assert lru.dram_bytes > flex.dram_bytes * 0.9


class TestRunnerInfra:
    def test_run_matrix_shape(self):
        out = run_matrix(
            [cg_workload(FV1, n=16, iterations=1)],
            configs=("Flexagon", "CELLO"),
            cfg=CFG,
        )
        assert set(out) == {"cg/fv1/N=16@it1"}
        assert set(out["cg/fv1/N=16@it1"]) == {"Flexagon", "CELLO"}

    def test_memoisation_is_bandwidth_transparent(self):
        w = cg_workload(FV1, n=16, iterations=1)
        fast = run_workload_config(w, "CELLO", CFG)
        slow = run_workload_config(w, "CELLO", CFG.with_bandwidth(250e9))
        assert fast.dram_bytes == slow.dram_bytes
        assert slow.time_s >= fast.time_s

    def test_unknown_config_raises(self):
        w = cg_workload(FV1, n=16, iterations=1)
        with pytest.raises(KeyError):
            run_config("NotAConfig", w.build(), CFG)

    def test_all_config_names_runnable_on_small_cg(self):
        dag = cg_workload(FV1, n=1, iterations=1).build()
        for name in config_names():
            r = run_config(name, dag, CFG, cache_granularity=8)
            assert r.dram_bytes > 0
            assert r.total_macs > 0
