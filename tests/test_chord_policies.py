"""Tests for PRELUDE/RIFF policies and the RIFF index table (Fig. 9/10)."""

import pytest

from repro.chord.hints import ReuseHints, TensorHints
from repro.chord.metadata import ENTRY_BITS_USED, RiffIndexTable, TensorEntry
from repro.chord.prelude import FillDecision, prelude_fill
from repro.chord.riff import Priority, RiffPolicy


def hints(**tensors):
    """hints(X=(total, producer, consumers, is_output), ...)"""
    return ReuseHints({
        name: TensorHints(name, t[0], t[1], tuple(t[2]), t[3])
        for name, t in tensors.items()
    })


class TestPrelude:
    def test_fits_entirely(self):
        d = prelude_fill(100, 200)
        assert d == FillDecision(inserted=100, spilled=0)

    def test_partial_fill_spills_tail(self):
        d = prelude_fill(300, 120)
        assert d.inserted == 120
        assert d.spilled == 180

    def test_no_space_spills_all(self):
        assert prelude_fill(50, 0).spilled == 50

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            prelude_fill(-1, 10)
        with pytest.raises(ValueError):
            prelude_fill(1, -10)


class TestPriority:
    def test_closer_use_wins(self):
        near = Priority(next_use_distance=1, remaining_frequency=1)
        far = Priority(next_use_distance=7, remaining_frequency=1)
        assert far < near

    def test_frequency_breaks_ties(self):
        a = Priority(1, 3)
        b = Priority(1, 1)
        assert b < a

    def test_dead_ranks_below_everything(self):
        dead = Priority(None, 0)
        far = Priority(10_000, 0)
        assert dead < far


class TestRiffPolicy:
    def test_paper_example_x_vs_r(self):
        """Sec. VI-A: X (reused next iteration) loses to R (reused at lines
        5 and 7 of the same iteration)."""
        h = hints(
            X=(1000, 3, [10], False),   # produced at op 3, next use op 10
            R=(1000, 4, [5, 7], False), # produced at op 4, used at 5 and 7
        )
        policy = RiffPolicy(h)
        # At op 4 (R being written), X is the resident victim candidate.
        victim = policy.select_victim(resident=["X"], incoming="R", op_index=4)
        assert victim == "X"

    def test_no_victim_when_incoming_is_lower_priority(self):
        h = hints(
            X=(1000, 3, [5], False),    # X reused very soon
            Y=(1000, 4, [20], False),   # Y reused far away
        )
        policy = RiffPolicy(h)
        assert policy.select_victim(resident=["X"], incoming="Y", op_index=4) is None

    def test_tensor_never_victimises_itself(self):
        h = hints(X=(1000, 0, [9], False))
        policy = RiffPolicy(h)
        assert policy.select_victim(resident=["X"], incoming="X", op_index=1) is None

    def test_picks_lowest_priority_among_many(self):
        h = hints(
            A=(100, 0, [2], False),
            B=(100, 0, [5], False),
            C=(100, 0, [9], False),
            NEW=(100, 1, [2], False),
        )
        policy = RiffPolicy(h)
        victim = policy.select_victim(resident=["A", "B", "C"], incoming="NEW", op_index=1)
        assert victim == "C"

    def test_dead_tensor_is_preferred_victim(self):
        h = hints(
            DEAD=(100, 0, [1], False),
            LIVE=(100, 0, [5], False),
            NEW=(100, 2, [3], False),
        )
        policy = RiffPolicy(h)
        victim = policy.select_victim(resident=["DEAD", "LIVE"], incoming="NEW", op_index=2)
        assert victim == "DEAD"


class TestIndexTable:
    def test_entry_budget_fits_512_bits(self):
        assert ENTRY_BITS_USED <= 512

    def test_allocate_and_release(self):
        t = RiffIndexTable(4)
        e = t.allocate("X", 0x1000, 0x2000)
        assert "X" in t
        assert e.total_bytes == 0x1000
        t.release("X")
        assert "X" not in t

    def test_capacity_enforced(self):
        t = RiffIndexTable(2)
        t.allocate("A", 0, 10)
        t.allocate("B", 10, 20)
        with pytest.raises(RuntimeError):
            t.allocate("C", 20, 30)

    def test_duplicate_rejected(self):
        t = RiffIndexTable(2)
        t.allocate("A", 0, 10)
        with pytest.raises(ValueError):
            t.allocate("A", 0, 10)

    def test_entry_width_must_hold_fields(self):
        with pytest.raises(ValueError):
            RiffIndexTable(4, entry_bits=64)

    def test_hit_rule_and_local_index(self):
        e = TensorEntry(
            tensor_id=0, name="A",
            start_tensor=0x1000, end_tensor=0x2000, end_chord=0x1800,
            start_index=0x100,
        )
        assert e.is_hit(0x1000)
        assert e.is_hit(0x17FF)
        assert not e.is_hit(0x1800)       # beyond resident prefix
        assert not e.is_hit(0x0FFF)
        # Fig. 10: index = (addr - start_tensor) + start_index.
        assert e.local_index(0x1234) == 0x234 + 0x100
        with pytest.raises(ValueError):
            e.local_index(0x1900)

    def test_reref_history_shifts(self):
        e = TensorEntry(0, "A", 0, 10, 10)
        e.record_access(True)
        e.record_access(False)
        e.record_access(True)
        assert e.reref_history & 0b111 == 0b101

    def test_total_bits_matches_table_v(self):
        t = RiffIndexTable(64, 512)
        assert t.total_bits == 64 * 512
