"""Tests for the workload builders and synthetic datasets (Table VI)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.workloads.bicgstab import BiCgStabProblem, bicgstab_ops_per_iteration, build_bicgstab_dag
from repro.workloads.cg import CgProblem, build_cg_dag, cg_ops_per_iteration, total_macs
from repro.workloads.gnn import GnnProblem, build_gnn_dag, cora_problem, protein_problem
from repro.workloads.matrices import (
    DATASETS,
    FV1,
    G2_CIRCUIT,
    NASA4704,
    SHALLOW_WATER1,
    banded_spd,
    graph_adjacency,
    poisson2d,
    random_symmetric_spd,
    spec_of,
    stencil9,
    synthesize,
)
from repro.workloads.registry import (
    all_bicgstab_workloads,
    all_cg_workloads,
    all_gnn_workloads,
    all_workloads,
    resnet_workload,
)
from repro.workloads.resnet import ResNetBlockProblem, build_resnet_block_dag


class TestMatrixSpecs:
    def test_table_vi_values(self):
        assert FV1.m == 9604 and FV1.nnz == 85264
        assert SHALLOW_WATER1.m == 81920 and SHALLOW_WATER1.nnz == 327680
        assert G2_CIRCUIT.m == 150102 and G2_CIRCUIT.nnz == 726674
        assert NASA4704.m == 4704 and NASA4704.nnz == 104756

    def test_csr_bytes(self):
        assert FV1.csr_bytes() == 85264 * 8 + 9605 * 4

    def test_registry_complete(self):
        assert set(DATASETS) == {
            "fv1", "shallow_water1", "G2_circuit", "NASA4704", "cora", "protein"
        }


def _is_spd(a, probes=3, seed=0):
    """Cheap SPD check: symmetry + positive Rayleigh quotients."""
    sym = abs(a - a.T).max() == 0
    rng = np.random.default_rng(seed)
    ok = all(
        float(v @ (a @ v)) > 0
        for v in (rng.standard_normal(a.shape[0]) for _ in range(probes))
    )
    return sym and ok


class TestGenerators:
    def test_poisson2d_shape_and_spd(self):
        a = poisson2d(12)
        assert a.shape == (144, 144)
        assert _is_spd(a)

    def test_stencil9_occupancy(self):
        a = stencil9(12)
        assert a.shape == (144, 144)
        assert 7.0 <= a.nnz / 144 <= 9.0
        assert _is_spd(a)

    def test_banded_spd(self):
        a = banded_spd(500, bands=2)
        assert _is_spd(a)
        assert a.nnz / 500 <= 5.0

    def test_random_symmetric_spd(self):
        a = random_symmetric_spd(300, nnz_target=1800, seed=1)
        assert _is_spd(a)
        assert abs(a.nnz - 1800) / 1800 < 0.3

    def test_graph_adjacency_binary(self):
        a = graph_adjacency(100, 600, seed=2)
        assert set(np.unique(a.data)) == {1.0}
        assert abs(a - a.T).max() == 0

    @pytest.mark.parametrize("spec", [FV1, SHALLOW_WATER1, NASA4704])
    def test_synthesize_matches_spec(self, spec):
        a = synthesize(spec)
        assert a.shape == (spec.m, spec.m)
        assert abs(a.nnz - spec.nnz) / spec.nnz < 0.20

    def test_spec_of_measures(self):
        a = poisson2d(10)
        s = spec_of(a, "p")
        assert s.m == 100
        assert s.nnz == a.nnz


class TestCgDag:
    def test_op_count(self):
        for iters in (1, 3):
            dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=iters))
            assert len(dag) == cg_ops_per_iteration() * iters

    def test_program_inputs(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        assert set(dag.program_inputs()) == {"A", "P@0", "R@0", "X@0", "Gamma@0"}

    def test_program_outputs(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        assert set(dag.program_outputs()) == {"X@2", "P@2"}

    def test_consumer_structure_matches_algorithm1(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        # P_i feeds lines 1, 2a, 3, 7 of its iteration.
        assert set(dag.consumers_of("P@1")) == {
            "1:spmm@1", "2a:gram@1", "3:xupd@1", "7:pupd@1"
        }
        # S_i feeds 2a and 4.
        assert set(dag.consumers_of("S@0")) == {"2a:gram@0", "4:rupd@0"}
        # R_{i+1} feeds 5 and 7 of its iteration, 4 of the next.
        assert set(dag.consumers_of("R@1")) == {"5:gram@0", "7:pupd@0", "4:rupd@1"}
        # A feeds every iteration's SpMM.
        assert set(dag.consumers_of("A")) == {"1:spmm@0", "1:spmm@1"}

    def test_macs_match_closed_form(self):
        p = CgProblem(matrix=FV1, n=16, iterations=3)
        dag = build_cg_dag(p)
        dag_macs = sum(op.macs for op in dag.ops)
        assert dag_macs == pytest.approx(total_macs(p), rel=0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CgProblem(matrix=FV1, n=0)
        with pytest.raises(ValueError):
            CgProblem(matrix=FV1, n=4, iterations=0)


class TestBicgstabDag:
    def test_op_count(self):
        p = BiCgStabProblem(matrix=NASA4704, n=1, iterations=2)
        dag = build_bicgstab_dag(p)
        assert len(dag) == bicgstab_ops_per_iteration() * 2

    def test_every_skewed_intermediate_has_delayed_consumer(self):
        from repro.core.classify import DependencyType, classify_dependencies

        p = BiCgStabProblem(matrix=NASA4704, n=1, iterations=2)
        cdag = classify_dependencies(build_bicgstab_dag(p))
        assert cdag.summary()[DependencyType.DELAYED_WRITEBACK.value] > 0

    def test_s_consumers(self):
        p = BiCgStabProblem(matrix=NASA4704, n=1, iterations=1)
        dag = build_bicgstab_dag(p)
        assert set(dag.consumers_of("S@0")) == {
            "t:spmm@0", "w:omega@0", "x:xupd@0", "q:rupd@0"
        }


class TestGnnDag:
    def test_shapes_cora(self):
        dag = build_gnn_dag(cora_problem())
        assert dag.tensor("X@0").shape == (2708, 1433)
        assert dag.tensor("H@0").shape == (2708, 7)

    def test_multilayer_chains(self):
        dag = build_gnn_dag(protein_problem(), layers=2)
        assert len(dag) == 4
        assert dag.consumers_of("H@0") == ("agg@1",)

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_gnn_dag(cora_problem(), layers=0)
        with pytest.raises(ValueError):
            GnnProblem(graph=FV1, in_features=0, out_features=2)


class TestResNetDag:
    def test_structure(self):
        dag = build_resnet_block_dag()
        assert len(dag) == 5  # pre + 3 convs + add
        assert set(dag.consumers_of("T0@0")) == {"c1:conv@0", "add:residual@0"}

    def test_word_size_is_16bit(self):
        dag = build_resnet_block_dag()
        assert dag.tensor("T0@0").word_bytes == 2

    def test_conv2_macs(self):
        dag = build_resnet_block_dag()
        c2 = dag.op("c2:conv@0")
        assert c2.macs == 784 * 9 * 128 * 128

    def test_stacked_blocks(self):
        dag = build_resnet_block_dag(ResNetBlockProblem(blocks=2))
        assert len(dag) == 9
        assert set(dag.consumers_of("T0@1")) == {"c1:conv@1", "add:residual@1"}


class TestRegistry:
    def test_all_workloads_buildable(self):
        ws = all_workloads()
        # CG grid + bicgstab + gnn + resnet + extension families
        # (1 transformer + 2 gmres + 2 mg).
        assert len(ws) == 6 + 3 + 2 + 1 + 5
        # Spot-build a few.
        for name in ("cg/fv1/N=1", "gnn/cora", "resnet/conv3_x",
                     "xformer/s=512/d=512", "gmres/fv1/m=8/N=1", "mg/fv1/N=1"):
            dag = ws[name].build()
            assert len(dag) > 0

    def test_cg_grid(self):
        names = [w.name for w in all_cg_workloads()]
        assert "cg/fv1/N=1" in names and "cg/G2_circuit/N=16" in names

    def test_bicgstab_n1(self):
        for w in all_bicgstab_workloads():
            assert "N=1" in w.name
