"""Reusable fault-injection harness for the sharded simulation fabric.

Everything the chaos tests (and ``tools/fabric_smoke.py``) need to stand
up a real fabric and break it deterministically:

* :class:`ShardProcess` — a genuine ``repro serve`` subprocess on an
  ephemeral port.  Subprocesses, not threads: the runner's memo cache
  and store hook are process-global, so only separate processes exercise
  the store-mediated shard sync the gateway relies on — and only a
  process can be SIGKILLed mid-stream.
* :class:`ChaosProxy` — a line-aware TCP proxy wrapped around one shard.
  It counts streamed ``result`` lines and fires a :class:`FaultPlan` at
  an exact count: **kill** the shard process at step K, **drop** the
  connection mid-stream (shard survives), or **delay** every result past
  step K (delayed ack → gateway read-timeout requeue).  Counting wire
  lines instead of sleeping makes every failure deterministic — the
  fault lands between result K and K+1, every run.
* :class:`GatewayThread` — an in-process
  :class:`~repro.service.gateway.GatewayService` (it holds no
  process-global state, so a thread is enough) pointed at the proxies.
* :class:`Fabric` — the bundle: N proxied shards over one shared cache
  directory plus a gateway, as a context manager.
* :func:`fuzz_payloads` — hostile wire frames shared by the gateway and
  shard fuzz tests.

This module deliberately has no ``test_`` prefix: pytest imports it from
test files (``tests/`` is on ``sys.path``) but never collects it.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _sever(*socks: socket.socket) -> None:
    """Shutdown-then-close.  The shutdown matters: ``close()`` alone on
    a socket another thread is blocked reading does not release the open
    file description — the kernel sends no FIN and the remote end (the
    gateway) never sees EOF.  ``shutdown(SHUT_RDWR)`` tears the
    connection down immediately regardless of pending reads, which is
    exactly the abrupt death the chaos tests are injecting."""
    for sock in socks:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

_ANNOUNCE_RE = re.compile(r"listening on ([\w.\-]+):(\d+)")

#: Compact-JSON marker of a streamed sweep result on the wire
#: (``encode_message`` uses ``separators=(",", ":")``).
RESULT_MARKER = b'"type":"result"'


# -- real shard daemons --------------------------------------------------------


class ShardProcess:
    """One ``repro serve`` daemon subprocess on an ephemeral port."""

    def __init__(self, cache_dir: str, jobs: int = 1,
                 host: str = "127.0.0.1",
                 extra_args: Sequence[str] = ()) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host", host,
             "--port", "0", "--jobs", str(jobs),
             "--cache-dir", str(cache_dir), *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.host = host
        self.port = self._await_announce(timeout_s=60.0)

    def _await_announce(self, timeout_s: float) -> int:
        """Parse the daemon's one announce line for its bound port."""
        lines: List[str] = []
        done = threading.Event()

        def read() -> None:
            assert self.proc.stdout is not None
            line = self.proc.stdout.readline()
            lines.append(line)
            done.set()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        if not done.wait(timeout_s) or not lines or not lines[0]:
            self.proc.kill()
            raise RuntimeError("shard daemon never announced its port")
        match = _ANNOUNCE_RE.search(lines[0])
        if match is None:
            self.proc.kill()
            raise RuntimeError(
                f"unexpected shard announce line: {lines[0]!r}")
        return int(match.group(2))

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the no-goodbye death the chaos tests need."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def stop(self) -> None:
        """Polite shutdown for teardown paths."""
        if self.alive:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)


# -- the chaos proxy -----------------------------------------------------------


@dataclass
class FaultPlan:
    """What to break, armed by result count across the proxy's lifetime.

    ``kill_after_results=K``: after forwarding the K-th ``result`` line,
    SIGKILL the shard process, sever every connection, and stop
    accepting new ones (the shard is *gone*).

    ``drop_after_results=K``: after the K-th ``result`` line, sever the
    streaming connection only — the shard lives, later connections
    (health pings, requeues) succeed.  Fires once.

    ``delay_results_s``: sleep this long before forwarding each
    ``result`` line once ``delay_after_results`` lines have passed — a
    sick-but-alive shard whose acks outlast the gateway's read timeout.
    """

    kill_after_results: Optional[int] = None
    drop_after_results: Optional[int] = None
    delay_results_s: float = 0.0
    delay_after_results: int = 0


class ChaosProxy:
    """Line-aware TCP proxy in front of one shard.

    The gateway talks to the proxy's address; upstream bytes pass
    through verbatim, downstream bytes are re-framed into protocol lines
    so the proxy can count ``result`` messages and fire the fault plan
    at an exact step.
    """

    def __init__(self, shard: ShardProcess,
                 plan: Optional[FaultPlan] = None) -> None:
        self.shard = shard
        self.plan = plan or FaultPlan()
        self.results_forwarded = 0
        self.host = "127.0.0.1"
        self._lock = threading.Lock()
        self._closing = False
        self._conns: List[socket.socket] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def id(self) -> str:
        """The ring/shard id the gateway will use for this proxy."""
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
        try:
            self._listener.close()
        except OSError:
            pass
        _sever(*conns)

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                upstream = socket.create_connection(
                    (self.shard.host, self.shard.port), timeout=30)
            except OSError:
                client.close()
                continue
            with self._lock:
                if self._closing:
                    client.close()
                    upstream.close()
                    return
                # Prune finished connections (health pings churn through
                # many) so the table tracks only live sockets.
                self._conns = [c for c in self._conns if c.fileno() != -1]
                self._conns.extend((client, upstream))
            threading.Thread(target=self._pump_up,
                             args=(client, upstream), daemon=True).start()
            threading.Thread(target=self._pump_down,
                             args=(upstream, client), daemon=True).start()

    def _pump_up(self, client: socket.socket,
                 upstream: socket.socket) -> None:
        """Client → shard: raw byte pass-through."""
        try:
            while True:
                data = client.recv(65536)
                if not data:
                    break
                upstream.sendall(data)
        except OSError:
            pass
        finally:
            # Half-close so the shard sees EOF but downstream keeps
            # flowing (the client sends one request, then only reads).
            try:
                upstream.shutdown(socket.SHUT_WR)
            except OSError:
                pass

    def _pump_down(self, upstream: socket.socket,
                   client: socket.socket) -> None:
        """Shard → client: line-framed, counting results, firing faults."""
        buffer = b""
        try:
            while True:
                chunk = upstream.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    line += b"\n"
                    if RESULT_MARKER in line:
                        if not self._forward_result(line, client):
                            return
                    else:
                        client.sendall(line)
        except OSError:
            pass
        finally:
            _sever(client, upstream)

    def _forward_result(self, line: bytes, client: socket.socket) -> bool:
        """Forward one result line, then fire any armed fault; returns
        ``False`` when the connection must stop pumping."""
        plan = self.plan
        with self._lock:
            self.results_forwarded += 1
            count = self.results_forwarded
        if (plan.delay_results_s > 0
                and count > plan.delay_after_results):
            time.sleep(plan.delay_results_s)
        client.sendall(line)
        if plan.kill_after_results is not None \
                and count >= plan.kill_after_results:
            # The real thing: the daemon process dies with no goodbye,
            # and this shard's address stops accepting connections.
            self.shard.kill()
            self.close()
            return False
        if plan.drop_after_results is not None \
                and count >= plan.drop_after_results:
            plan.drop_after_results = None  # fires once
            return False  # severs this connection; shard stays up
        return True


# -- the gateway, in-process ---------------------------------------------------


class GatewayThread:
    """Run a GatewayService on a daemon thread for the test's duration."""

    def __init__(self, shard_addrs: Sequence[Tuple[str, int]],
                 **kwargs) -> None:
        import asyncio

        from repro.service import GatewayService

        kwargs.setdefault("port", 0)
        self.gateway = GatewayService(shard_addrs, **kwargs)
        self._asyncio = asyncio
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-test", daemon=True)

    def _run(self) -> None:
        try:
            self._asyncio.run(self.gateway.run())
        except OSError:
            pass  # startup failure is visible via gateway.startup_error

    def __enter__(self) -> "GatewayThread":
        self._thread.start()
        assert self.gateway.wait_started(timeout=30)
        assert self.gateway.startup_error is None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.gateway.request_stop()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()

    @property
    def port(self) -> int:
        return self.gateway.port

    def client(self, **kwargs):
        from repro.service import ServiceClient

        kwargs.setdefault("timeout", 120.0)
        return ServiceClient(port=self.port, **kwargs)


# -- the whole fabric ----------------------------------------------------------


class Fabric:
    """N proxied shard daemons over one shared cache dir, plus a gateway.

    The shared cache directory is load-bearing: it is the store-mediated
    sync channel that turns a dead shard's already-simulated points into
    warm hits on the survivors (zero duplicate simulations after a
    requeue).
    """

    def __init__(self, cache_dir: str, n_shards: int = 3,
                 plans: Optional[Dict[int, FaultPlan]] = None,
                 shard_args: Sequence[str] = (),
                 **gateway_kwargs) -> None:
        self.cache_dir = str(cache_dir)
        self.shards: List[ShardProcess] = []
        self.proxies: List[ChaosProxy] = []
        self.gateway_thread: Optional[GatewayThread] = None
        plans = plans or {}
        try:
            for i in range(n_shards):
                shard = ShardProcess(self.cache_dir, extra_args=shard_args)
                self.shards.append(shard)
                self.proxies.append(ChaosProxy(shard, plans.get(i)))
            self.gateway_thread = GatewayThread(
                [p.addr for p in self.proxies], **gateway_kwargs)
        except BaseException:
            self._teardown()
            raise

    def __enter__(self) -> "Fabric":
        assert self.gateway_thread is not None
        self.gateway_thread.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._teardown(exc_info)

    def _teardown(self, exc_info: Tuple = (None, None, None)) -> None:
        if self.gateway_thread is not None \
                and self.gateway_thread._thread.is_alive():
            self.gateway_thread.__exit__(*exc_info)
        for proxy in self.proxies:
            proxy.close()
        for shard in self.shards:
            shard.stop()

    @property
    def gateway(self):
        assert self.gateway_thread is not None
        return self.gateway_thread.gateway

    def client(self, **kwargs):
        assert self.gateway_thread is not None
        return self.gateway_thread.client(**kwargs)

    def results_file(self) -> Path:
        return Path(self.cache_dir) / "results.jsonl"


# -- helpers shared by chaos tests and the smoke tool --------------------------


def assignment_by_proxy(proxies: Sequence[ChaosProxy],
                        points: Sequence[object],
                        replicas: int = 64) -> Dict[int, List[object]]:
    """Group sweep points by the proxy (shard) the gateway will route
    them to — computed with the same ring the gateway builds, so a test
    can pick its chaos victim *after* learning the real assignment
    instead of hoping a hard-coded shard owns enough keys."""
    from repro.orchestrator.store import ResultStore
    from repro.service.hashing import HashRing

    ring = HashRing([p.id for p in proxies], replicas=replicas)
    index = {p.id: i for i, p in enumerate(proxies)}
    groups: Dict[int, List[object]] = {}
    for point in points:
        shard_id = ring.assign(ResultStore.key_str(point.key()))
        groups.setdefault(index[shard_id], []).append(point)
    return groups


def busiest_proxy(proxies: Sequence[ChaosProxy],
                  points: Sequence[object],
                  replicas: int = 64) -> int:
    """Index of the proxy owning the most points — with >= len(proxies)
    + 1 distinct keys it owns >= 2 by pigeonhole, so killing it after
    result 1 always leaves something to requeue."""
    groups = assignment_by_proxy(proxies, points, replicas=replicas)
    return max(groups, key=lambda i: len(groups[i]))


def distinct_keys(points: Sequence[object]) -> int:
    from repro.orchestrator.store import ResultStore

    return len({ResultStore.key_str(p.key()) for p in points})


def duplicate_store_keys(results_file: Path) -> List[str]:
    """Traffic keys recorded more than once in a store file — must be
    empty after any chaos run, or the fabric double-simulated."""
    counts: Dict[str, int] = {}
    for key in store_record_keys(results_file):
        counts[key] = counts.get(key, 0) + 1
    return sorted(k for k, n in counts.items() if n > 1)


def store_record_keys(results_file: Path) -> List[str]:
    """Every traffic key appended to a store file, in append order, in
    :meth:`ResultStore.key_str` form (records hold the key as a JSON
    list).  Tolerates a torn final line — a SIGKILL can land mid-append."""
    keys: List[str] = []
    if not results_file.exists():
        return keys
    with results_file.open() as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            key = record.get("key")
            if isinstance(key, list):
                keys.append(json.dumps(key, separators=(",", ":")))
    return keys


def fuzz_exchange(port: int, payload: bytes,
                  host: str = "127.0.0.1") -> List[dict]:
    """Send one hostile frame, half-close, and collect every reply line
    until the listener hangs up.  Both fuzz suites (gateway and shard)
    drive their listeners through this."""
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.settimeout(30)
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return [json.loads(line) for line in data.split(b"\n") if line.strip()]


def fuzz_payloads(seed: int = 0) -> List[bytes]:
    """Hostile wire frames for both listener fuzz suites: truncated
    JSON, garbage bytes, wrong top-level types, unknown/missing ops,
    malformed point objects, and an oversized line."""
    rng = random.Random(seed)
    payloads = [
        b"\n",
        b"not json at all\n",
        b"{truncated\n",
        b'{"op": "sweep", "workloads": [\n',
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"42\n",
        b'{"no_op_field": true}\n',
        b'{"op": "warp-core"}\n',
        b'{"op": 7}\n',
        b'{"op": "points"}\n',
        b'{"op": "points", "points": "nope"}\n',
        b'{"op": "points", "points": []}\n',
        b'{"op": "points", "points": [42]}\n',
        b'{"op": "points", "points": [{"workload": ""}]}\n',
        b'{"op": "sweep", "workloads": 9}\n',
        b"\xff\xfe\x00\x01garbage\n",
        b"x" * (1024 * 1024 + 64) + b"\n",  # over MAX_LINE_BYTES
    ]
    for _ in range(8):
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
        payloads.append(junk + b"\n")
    return payloads
