"""Property tests for the consistent-hash ring the gateway routes on.

The fabric's correctness argument leans on three ring properties, so
each is pinned directly rather than assumed:

* **Leave/join stability** — removing a shard reassigns *only* its keys
  (the requeue-on-death guarantee: survivors' warm stores stay hot), and
  adding one steals keys only for itself (a restarted shard reclaims its
  old keys, nothing else moves).
* **Process independence** — assignment must be identical in every
  process regardless of ``PYTHONHASHSEED``, or a restarted gateway would
  route warm keys to cold shards.
* **Sanity on real traffic keys** — the keys actually routed are the
  result store's key strings; they must hash collision-free and spread
  across shards.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import GB, MIB
from repro.orchestrator.spec import SweepSpec
from repro.orchestrator.store import ResultStore
from repro.service.hashing import (
    DEFAULT_REPLICAS,
    EmptyRing,
    HashRing,
    stable_hash,
)

#: Shard ids shaped like the gateway's real ones (host:port strings),
#: plus arbitrary text — the ring must not care what ids look like.
shard_ids = st.one_of(
    st.from_regex(r"127\.0\.0\.1:[1-9][0-9]{3}", fullmatch=True),
    st.text(min_size=1, max_size=20),
)
shard_sets = st.lists(shard_ids, min_size=1, max_size=8, unique=True)
keys = st.text(max_size=64)


def real_traffic_keys():
    """Store-key strings for a realistic full evaluation grid."""
    spec = SweepSpec(
        workloads=("*",),                 # every registered workload
        sram_bytes=(2 * MIB, 4 * MIB),
        bandwidths=(250.0 * GB, 1000.0 * GB),
    )
    return sorted({ResultStore.key_str(p.key()) for p in spec.points()})


class TestStableHash:
    def test_known_value_is_pinned(self):
        # A change here silently reroutes every warm key after an
        # upgrade — if this fails, the hash function changed and the
        # fabric's store-affinity story needs a migration plan.
        assert stable_hash("") == 0xE4A6A0577479B2B4
        assert stable_hash("127.0.0.1:8642#0") != stable_hash(
            "127.0.0.1:8642#1")

    @given(keys)
    @settings(max_examples=200, deadline=None)
    def test_is_a_64_bit_value(self, key):
        assert 0 <= stable_hash(key) < 2 ** 64

    def test_real_traffic_keys_are_collision_free(self):
        ks = real_traffic_keys()
        assert len(ks) > 50  # the grid is real, not degenerate
        hashes = {stable_hash(k) for k in ks}
        assert len(hashes) == len(ks)


class TestRingConstruction:
    def test_empty_ring_raises(self):
        with pytest.raises(EmptyRing):
            HashRing([])

    def test_duplicate_shards_raise(self):
        with pytest.raises(ValueError):
            HashRing(["a", "b", "a"])

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)

    def test_contains_and_len(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring and len(ring) == 2

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.assign(k) == "only" for k in ("", "x", "y" * 50))


class TestAssignmentProperties:
    @given(shard_sets, keys)
    @settings(max_examples=200, deadline=None)
    def test_assignment_is_deterministic_across_instances(self, shards, key):
        # Two independently built rings (shard order shuffled) agree —
        # a restarted gateway reroutes nothing.
        a = HashRing(shards)
        b = HashRing(list(reversed(shards)))
        assert a.assign(key) == b.assign(key)

    @given(shard_sets, st.lists(keys, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_leave_moves_only_the_dead_shards_keys(self, shards, key_list):
        ring = HashRing(shards)
        for dead in shards:
            if len(shards) == 1:
                continue
            survivor_ring = ring.without(dead)
            for key in key_list:
                before = ring.assign(key)
                if before != dead:
                    # The requeue guarantee, exactly: a key not owned by
                    # the dead shard keeps its owner.
                    assert survivor_ring.assign(key) == before
                else:
                    assert survivor_ring.assign(key) != dead

    @given(shard_sets, shard_ids, st.lists(keys, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_join_steals_keys_only_for_itself(self, shards, new, key_list):
        if new in shards:
            return
        ring = HashRing(shards)
        grown = ring.with_shard(new)
        for key in key_list:
            after = grown.assign(key)
            assert after == ring.assign(key) or after == new

    @given(shard_sets, st.lists(keys, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_assign_many_partitions_the_keys(self, shards, key_list):
        groups = HashRing(shards).assign_many(key_list)
        flattened = [k for ks in groups.values() for k in ks]
        assert sorted(flattened) == sorted(key_list)
        assert all(owner in shards for owner in groups)


class TestMovementFraction:
    def test_leave_moves_roughly_one_nth_of_real_keys(self):
        """On the real evaluation grid, a 4-shard ring losing one shard
        moves only that shard's share of keys — the measured fraction is
        exactly the dead shard's ownership, and ownership is spread (no
        shard owns a majority)."""
        shards = [f"127.0.0.1:{8642 + i}" for i in range(4)]
        ring = HashRing(shards, replicas=DEFAULT_REPLICAS)
        ks = real_traffic_keys()
        owners = {k: ring.assign(k) for k in ks}
        for dead in shards:
            survivor_ring = ring.without(dead)
            moved = sum(1 for k in ks if survivor_ring.assign(k) != owners[k])
            owned = sum(1 for k in ks if owners[k] == dead)
            assert moved == owned  # nothing but the dead shard's keys
        counts = [sum(1 for o in owners.values() if o == s) for s in shards]
        assert all(c > 0 for c in counts)
        assert max(counts) < len(ks) * 0.6  # no shard hoards the ring


class TestCrossProcessDeterminism:
    def test_assignment_survives_pythonhashseed_changes(self):
        """The same assignments must come out of fresh interpreters with
        different hash seeds — the property a builtin-``hash()`` ring
        would fail, and the reason a gateway restart is harmless."""
        shards = ["127.0.0.1:8643", "127.0.0.1:8644", "127.0.0.1:8645"]
        ks = real_traffic_keys()[:40]
        script = (
            "import sys\n"
            "from repro.service.hashing import HashRing\n"
            "ring = HashRing({shards!r})\n"
            "for key in {keys!r}:\n"
            "    print(ring.assign(key))\n"
        ).format(shards=shards, keys=ks)
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": src, "PYTHONHASHSEED": seed,
                     "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, check=True)
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        local = HashRing(shards)
        assert outputs[0].splitlines() == [local.assign(k) for k in ks]
