"""Tests for the analysis helpers: report rendering, roofline helpers,
capability tables."""

import pytest

from repro.analysis.report import render_kv, render_table
from repro.analysis.roofline import (
    REGULAR_GEMM,
    SKEWED_GEMM,
    GemmPoint,
    gemm_roofline_rows,
    result_on_roofline,
    roofline_for,
)
from repro.analysis.tables import (
    BUFFER_ROWS,
    SCHEDULER_ROWS,
    buffer_capability_table,
    scheduler_capability_table,
)
from repro.hw.config import AcceleratorConfig
from repro.sim.perf import make_result

CFG = AcceleratorConfig()


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]], precision=2)
        assert "3.14" in out

    def test_bools_render_yes_no(self):
        out = render_table(["v"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_scientific_for_extremes(self):
        out = render_table(["v"], [[1.5e12]])
        assert "e+" in out

    def test_nan_renders_dash(self):
        out = render_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_title(self):
        assert render_table(["a"], [["x"]], title="T").startswith("T\n")

    def test_render_kv(self):
        out = render_kv([("key", 1), ("longer key", "v")], title="KV")
        assert out.startswith("KV")
        assert ": 1" in out


class TestRooflineHelpers:
    def test_paper_gemm_points(self):
        assert REGULAR_GEMM.macs == SKEWED_GEMM.macs
        assert REGULAR_GEMM.intensity > 20 * SKEWED_GEMM.intensity / 2

    def test_gemm_rows(self):
        rows = gemm_roofline_rows(CFG)
        assert len(rows) == 2
        (label1, ai1, gm1, mb1), (label2, ai2, gm2, mb2) = rows
        assert not mb1 and mb2
        assert gm1 > gm2

    def test_result_on_roofline(self):
        r = make_result("c", "w", 10**9, 10**6, 0, CFG)
        ai, attainable = result_on_roofline(r, CFG)
        assert ai == pytest.approx(1000.0)
        assert attainable == pytest.approx(CFG.peak_macs_per_s / 1e9)

    def test_custom_gemm_point(self):
        p = GemmPoint("t", 100, 100, 100)
        assert p.macs == 10**6
        assert p.intensity > 0


class TestCapabilityTables:
    def test_score_row_is_strictly_most_capable(self):
        score = SCHEDULER_ROWS[-1]
        for other in SCHEDULER_ROWS[:-1]:
            assert score.delayed_writeback >= other.delayed_writeback
            assert (
                score.inter_op_pipelining,
                score.delayed_hold,
                score.delayed_writeback,
            ) >= (
                other.inter_op_pipelining,
                other.delayed_hold,
                other.delayed_writeback,
            )
        assert score.delayed_writeback and score.swizzle_minimization

    def test_only_score_has_writeback(self):
        assert [r.delayed_writeback for r in SCHEDULER_ROWS] == [
            False, False, False, True
        ]

    def test_chord_row_is_object_granular(self):
        chord = BUFFER_ROWS[-1]
        assert chord.granularity == "object"
        assert chord.exposure == "hybrid"
        assert chord.online_policy

    def test_tables_render(self):
        assert "SCORE" in scheduler_capability_table()
        assert "CHORD" in buffer_capability_table()
