"""Tests for the hardware config (Table V) and SRAM cost model (Fig. 15)."""

import pytest

from repro.hw.config import BANDWIDTH_POINTS, AcceleratorConfig, MIB
from repro.hw.noc import (
    NocConfig,
    op_split_traffic_words,
    rank_split_traffic_words,
    traffic_advantage,
)
from repro.hw.sram_model import (
    all_structure_costs,
    buffet_cost,
    cache_cost,
    cache_tag_bits,
    chord_cost,
    chord_metadata_ratio,
    chord_table_bits,
    scratchpad_cost,
)


class TestConfig:
    def test_table_v_defaults(self):
        cfg = AcceleratorConfig()
        assert cfg.sram_bytes == 4 * MIB
        assert cfg.n_macs == 16384
        assert cfg.line_bytes == 16
        assert cfg.cache_associativity == 8
        assert cfg.clock_hz == 1e9
        assert cfg.chord_entries == 64
        assert cfg.chord_entry_bits == 512
        assert BANDWIDTH_POINTS == (250e9, 1000e9)

    def test_derived_geometry(self):
        cfg = AcceleratorConfig()
        assert cfg.n_lines == 262144
        assert cfg.n_sets == 32768
        assert cfg.chord_data_bytes + cfg.pipeline_buffer_bytes == cfg.sram_bytes

    def test_ridge_point(self):
        cfg = AcceleratorConfig()
        assert cfg.ridge_ops_per_byte == pytest.approx(16.384)
        # Fig. 16(a): at 250 GB/s the ridge moves to 65.536 ops/byte.
        slow = cfg.with_bandwidth(250e9)
        assert slow.ridge_ops_per_byte == pytest.approx(65.536)

    def test_variants(self):
        cfg = AcceleratorConfig()
        assert cfg.with_sram(MIB).sram_bytes == MIB
        assert cfg.with_bandwidth(1).dram_bandwidth_bytes_per_s == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(sram_bytes=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(line_bytes=17)
        with pytest.raises(ValueError):
            AcceleratorConfig(pipeline_fraction=1.5)


class TestSramModel:
    def test_fig15_area_endpoints(self):
        """Calibration check: the paper's 4MB numbers (±2%)."""
        cfg = AcceleratorConfig()
        assert buffet_cost(cfg).total_mm2 == pytest.approx(6.72, rel=0.02)
        assert cache_cost(cfg).total_mm2 == pytest.approx(9.87, rel=0.02)
        assert chord_cost(cfg).total_mm2 == pytest.approx(6.74, rel=0.02)
        assert cache_cost(cfg).metadata_mm2 == pytest.approx(1.85, rel=0.02)
        assert cache_cost(cfg).data_mm2 == pytest.approx(6.59, rel=0.02)

    def test_chord_metadata_tiny(self):
        cfg = AcceleratorConfig()
        assert chord_metadata_ratio(cfg) < 0.02  # paper: ~0.01x
        assert chord_table_bits(cfg) == 64 * 512

    def test_cache_energy_dominates(self):
        cfg = AcceleratorConfig()
        costs = all_structure_costs(cfg)
        assert costs["cache"].energy_pj_per_access > costs["chord"].energy_pj_per_access
        assert costs["cache"].energy_pj_per_access > costs["buffet"].energy_pj_per_access
        # Tag probes are a sizeable chunk of cache energy (Sec. VI-B).
        assert costs["cache"].energy_pj_per_access > 1.4 * costs["scratchpad"].energy_pj_per_access

    def test_area_scales_with_capacity(self):
        small = chord_cost(AcceleratorConfig(sram_bytes=1 * MIB))
        big = chord_cost(AcceleratorConfig(sram_bytes=16 * MIB))
        assert big.data_mm2 == pytest.approx(16 * small.data_mm2)

    def test_energy_scales_sublinearly(self):
        small = scratchpad_cost(AcceleratorConfig(sram_bytes=1 * MIB))
        big = scratchpad_cost(AcceleratorConfig(sram_bytes=16 * MIB))
        assert big.energy_pj_per_access == pytest.approx(4 * small.energy_pj_per_access)

    def test_tag_bits_geometry(self):
        cfg = AcceleratorConfig()
        # 40 - log2(32768) - log2(16) = 21 tag bits + 4 state per line.
        assert cache_tag_bits(cfg) == 262144 * 25


class TestNoc:
    def test_mesh_geometry(self):
        noc = NocConfig(n_nodes=16)
        assert noc.mesh_side == 4
        assert noc.broadcast_hops == 6
        assert noc.reduce_hops == 6

    def test_traffic_formulas(self):
        noc = NocConfig(n_nodes=16)
        assert op_split_traffic_words(1000, 16) == 16000
        assert rank_split_traffic_words(16, 16, noc) == 16 * 16 * 12
        assert traffic_advantage(100000, 16, 16, noc) > 100

    def test_single_node(self):
        noc = NocConfig(n_nodes=1)
        assert noc.broadcast_hops == 1  # minimum one hop

    def test_invalid(self):
        with pytest.raises(ValueError):
            NocConfig(n_nodes=0)
