"""Edge cases of the human-facing report renderers: empty job tables,
failed-job rows, degenerate Pareto fronts, dominated incumbents, and the
fidelity accounting line.

The happy paths run constantly under the CLI and loopback suites; what
breaks in the field is the empty/failed/degenerate input a renderer sees
exactly once — so each of those gets pinned here.
"""

import dataclasses

from repro.analysis.service_report import (
    render_jobs,
    render_metrics,
    render_service_stats,
    render_topology,
    summarize_sweep_outcome,
    sweep_outcome_rows,
)
from repro.analysis.tuner_report import (
    ANALYTIC_ERROR_BOUND,
    render_fidelity_line,
    render_tune_result,
)
from repro.hw.config import GB, MIB, AcceleratorConfig
from repro.service.client import PointResult, SweepOutcome
from repro.sim.perf import make_result
from repro.tuner.space import TunePoint
from repro.tuner.tuner import TuneEval, TuneResult


def _result(dram_read=1000, dram_write=100):
    return make_result(config="CELLO", workload="w", total_macs=10_000,
                       dram_read_bytes=dram_read, dram_write_bytes=dram_write,
                       cfg=AcceleratorConfig(), onchip_accesses={"T": 5_000})


def _eval(runtime, dram, point=None, fidelity="exact"):
    point = point or TunePoint()
    # Memory-bound result whose traffic (and so runtime) tracks the dram
    # objective, keeping the rendered headroom ratios exact.
    return TuneEval(point=point, config=point.config_name(),
                    objectives={"runtime": runtime, "dram": dram},
                    result=_result(dram_read=int(dram * 1_000_000),
                                   dram_write=0),
                    fidelity=fidelity)


def _tune_result(evaluations, incumbent, **kwargs):
    defaults = dict(workload="w", strategy="grid",
                    objectives=("runtime", "dram"),
                    evaluations=tuple(evaluations), incumbent=incumbent,
                    n_simulations=len(evaluations))
    defaults.update(kwargs)
    return TuneResult(**defaults)


class TestJobsTable:
    def test_empty_registry_renders_guidance_not_a_table(self):
        out = render_jobs([])
        assert out == "no jobs tracked (submit one with 'repro submit')"

    def test_failed_job_row_shows_the_error(self):
        out = render_jobs([
            {"id": "j1", "kind": "sweep", "state": "done", "done": 4,
             "total": 4, "simulations": 4, "summary": "ok"},
            {"id": "j2", "kind": "sweep", "state": "error", "done": 1,
             "total": 4, "error": "unknown workload 'nope'"},
        ])
        assert "Jobs: 2" in out
        assert "unknown workload 'nope'" in out
        assert "1/4" in out  # partial progress of the failed job

    def test_row_tolerates_missing_fields(self):
        # A job dict from an older/newer server may omit counters.
        out = render_jobs([{"id": "j1"}])
        assert "j1" in out and "0/0" in out


class TestServiceStats:
    def test_fresh_server_stats_do_not_divide_by_zero(self):
        out = render_service_stats({"uptime_s": 0.0, "points_streamed": 0,
                                    "simulations": 0})
        assert "0.00 points/s" in out
        assert "0% answered without simulating" in out
        assert "jobs:            none" in out
        assert "store:           disabled" in out

    def test_store_and_broken_pool_sections(self):
        out = render_service_stats({
            "uptime_s": 10.0, "points_streamed": 20, "simulations": 5,
            "jobs": {"done": 2, "error": 1},
            "pool": {"jobs": 4, "batches": 3, "payloads": 20, "broken": True},
            "store": {"entries": 7, "schema_version": 3,
                      "directory": "/tmp/cache",
                      "workloads": {"cg/fv1/N=1": 7}},
        })
        assert "[broken: serial fallback]" in out
        assert "2 done, 1 error" in out
        assert "7 entries" in out and "cg/fv1/N=1" in out
        assert "75% answered without simulating" in out

    def test_v5_stats_split_warm_hits_from_coalesced(self):
        # A v5 daemon reports the dedup sources separately; the
        # aggregate-ratio line is the pre-v5 fallback only.
        out = render_service_stats({
            "uptime_s": 10.0, "points_streamed": 20, "simulations": 5,
            "hits_total": 9, "coalesced_total": 6, "shed_total": 2,
        })
        assert "9 warm hit(s), 6 coalesced, 2 shed" in out
        assert "answered without simulating" not in out


class TestTopologyRendering:
    def test_gateway_stats_render_routing_counters(self):
        out = render_service_stats({
            "role": "gateway", "uptime_s": 10.0, "points_streamed": 20,
            "jobs": {"done": 2}, "requeued_total": 3,
            "shards_healthy": 2, "shards_total": 3,
        })
        assert "Gateway stats" in out
        assert "2/3 healthy" in out
        assert "requeued:        3 point(s)" in out

    def test_single_daemon_topology(self):
        out = render_topology({
            "role": "shard", "protocol": 4, "host": "127.0.0.1",
            "port": 8642, "workers": 4, "in_flight": 1, "queue_depth": 2,
            "store": "/tmp/cache",
        })
        assert "single shard (protocol v4)" in out
        assert "127.0.0.1:8642" in out and "/tmp/cache" in out

    def test_gateway_topology_lists_shard_health(self):
        out = render_topology({
            "role": "gateway", "protocol": 4, "host": "127.0.0.1",
            "port": 9000, "replicas": 64, "requeued_total": 5,
            "shards": [
                {"id": "127.0.0.1:8643", "healthy": True, "protocol": 4,
                 "deaths": 0, "error": None},
                {"id": "127.0.0.1:8644", "healthy": False, "protocol": 4,
                 "deaths": 1, "error": "unreachable: refused"},
            ],
        })
        assert "gateway over 2 shard(s), 1 healthy" in out
        assert "DOWN" in out and "unreachable: refused" in out
        assert "64 virtual node(s)" in out


class TestMetricsRendering:
    def test_shard_metrics_render_every_operational_counter(self):
        out = render_metrics({
            "role": "shard", "protocol": 5, "uptime_s": 12.5,
            "jobs": {"done": 3}, "points_streamed": 40,
            "simulations": 10, "hits_total": 20, "coalesced_total": 8,
            "shed_total": 2, "queue_depth": 3, "max_pending": 64,
            "in_flight": 5,
            "queue_clients": {"alice": 2, "bob": 1},
            "rates": {"window_s": 60.0, "sims_per_s": 1.25,
                      "points_per_s": 5.0, "analytic_evals_per_s": 0.0},
            "store": {"entries": 10, "hits": 20, "misses": 10,
                      "hit_rate": 0.6667, "corrupt": 0, "stale": 0,
                      "duplicates": 2},
        })
        assert "Metrics: shard (protocol v5" in out
        assert "sims/s:          1.25 (over 60 s)" in out
        assert "warm hits:       20" in out
        assert "coalesced:       8" in out
        assert "shed:            2" in out
        assert "queue depth:     3/64 (+5 in flight)" in out
        assert "alice" in out and "2 queued" in out
        assert "store hit rate:  66.67% (20 hits / 10 misses)" in out
        assert "2 duplicates" in out
        assert "check disk" not in out  # corrupt == 0: no scare line

    def test_shard_metrics_flag_corrupt_store_records(self):
        out = render_metrics({
            "role": "shard", "protocol": 5, "uptime_s": 1.0,
            "rates": {}, "queue_clients": {},
            "store": {"entries": 1, "hits": 0, "misses": 1,
                      "hit_rate": 0.0, "corrupt": 3, "stale": 0,
                      "duplicates": 0},
        })
        assert "3 corrupt" in out
        assert "corrupt records growing; check disk" in out

    def test_shard_metrics_without_a_store(self):
        out = render_metrics({"role": "shard", "protocol": 5,
                              "uptime_s": 0.0, "rates": {},
                              "queue_clients": {}, "store": None})
        assert "store:           disabled" in out

    def test_gateway_metrics_render_shard_health_table(self):
        out = render_metrics({
            "role": "gateway", "protocol": 5, "uptime_s": 30.0,
            "jobs": {"done": 1, "running": 1}, "points_streamed": 100,
            "requeued_total": 7, "shards_healthy": 2, "shards_total": 3,
            "rates": {"window_s": 60.0, "points_per_s": 3.5},
            "shards": [
                {"id": "127.0.0.1:8643", "healthy": True, "deaths": 0,
                 "requeued": 0, "error": None},
                {"id": "127.0.0.1:8644", "healthy": False, "deaths": 2,
                 "requeued": 7, "error": "unreachable: refused"},
            ],
        })
        assert "Metrics: gateway (protocol v5" in out
        assert "points/s:        3.5 (over 60 s)" in out
        assert "requeued total:  7" in out
        assert "shards healthy:  2/3" in out
        assert "DOWN" in out and "unreachable: refused" in out


class TestSweepOutcome:
    def _outcome(self, n_points):
        points = [
            PointResult(workload="w", config="CELLO", sram_bytes=4 * MIB,
                        bandwidth_bytes_per_s=256 * GB,
                        cache_granularity=None, result=_result())
            for _ in range(n_points)
        ]
        return SweepOutcome(job_id="j9", points=points, simulations=1,
                            hits=n_points - 1 if n_points else 0,
                            coalesced=0, elapsed_s=0.25)

    def test_summary_line_is_greppable(self):
        line = summarize_sweep_outcome(self._outcome(3))
        assert line == ("job j9: 3 points  simulations: 1  warm hits: 2  "
                        "coalesced: 0  requeued: 0  elapsed: 0.250s\n"
                        "simulations re-run: 1")

    def test_requeued_points_surface_in_the_summary(self):
        outcome = dataclasses.replace(self._outcome(3), requeued=2)
        line = summarize_sweep_outcome(outcome)
        assert "requeued: 2" in line

    def test_empty_outcome_summarises_cleanly(self):
        line = summarize_sweep_outcome(self._outcome(0))
        assert "0 points" in line and "simulations: 1" in line

    def test_rows_mirror_the_points(self):
        rows = sweep_outcome_rows(self._outcome(2).points)
        assert len(rows) == 2
        assert rows[0][0] == "w" and rows[0][1] == "CELLO"
        assert rows[0][2] == 4.0  # MiB


class TestTuneResultRendering:
    def test_single_point_front_renders(self):
        only = _eval(10.0, 5.0)
        out = render_tune_result(_tune_result([only], only))
        assert "1 Pareto point(s) from 1 evaluation(s)" in out
        assert "pareto+best+fixed CELLO" in out
        assert "1.00x runtime" in out  # best == incumbent: no headroom

    def test_dominated_incumbent_gets_its_own_row(self):
        better = _eval(5.0, 2.0,
                       point=TunePoint(sram_bytes=1 * MIB, chord_entries=4))
        incumbent = _eval(10.0, 4.0)
        out = render_tune_result(_tune_result([better, incumbent], incumbent))
        assert "fixed CELLO (dominated)" in out
        assert "2.00x runtime" in out and "2.00x DRAM" in out

    def test_analytic_entries_are_tagged(self):
        fast = _eval(5.0, 2.0,
                     point=TunePoint(sram_bytes=1 * MIB, chord_entries=4),
                     fidelity="analytic")
        incumbent = _eval(10.0, 4.0)
        tr = _tune_result([fast, incumbent], incumbent, fidelity="hybrid",
                          n_analytic=1, analytic_max_rel_error=0.001)
        out = render_tune_result(tr)
        assert "pareto+best+analytic" in out
        assert "fidelity: hybrid" in out

    def test_exact_run_renders_no_fidelity_line(self):
        only = _eval(10.0, 5.0)
        out = render_tune_result(_tune_result([only], only))
        assert "fidelity:" not in out


class TestFidelityLine:
    def _tr(self, err):
        only = _eval(10.0, 5.0)
        return _tune_result([only], only, fidelity="hybrid", n_analytic=7,
                            analytic_max_rel_error=err, n_simulations=2)

    def test_no_resimulated_prediction(self):
        line = render_fidelity_line(self._tr(None))
        assert "max analytic error n/a (no prediction re-simulated)" in line
        assert "7 analytic-priced evaluation(s)" in line

    def test_error_within_bound(self):
        line = render_fidelity_line(self._tr(ANALYTIC_ERROR_BOUND))
        assert "within 2% bound" in line and "EXCEEDS" not in line

    def test_error_exceeding_bound_is_flagged(self):
        line = render_fidelity_line(self._tr(0.05))
        assert "EXCEEDS 2% bound" in line
        assert "5.0000%" in line
