"""Tests for the numeric solvers and the DAG reference executor.

The load-bearing check: executing the *built CG DAG* numerically must
match the standalone block-CG solver step for step — proving the DAG
builder wires exactly Algorithm 1.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.bicgstab import bicgstab, block_bicgstab
from repro.solvers.blockcg import block_cg, classic_cg
from repro.solvers.reference import (
    CG_SEMANTICS,
    einsum_expr,
    execute_cg_dag,
    execute_dag,
)
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.gnn import GnnProblem, build_gnn_dag
from repro.workloads.matrices import MatrixSpec, poisson2d, spec_of


@pytest.fixture(scope="module")
def problem():
    a = poisson2d(16)  # 256x256 SPD
    rng = np.random.default_rng(7)
    b = rng.standard_normal((256, 4))
    return a, b


class TestBlockCg:
    def test_converges_to_true_solution(self, problem):
        a, b = problem
        res = block_cg(a, b, tol=1e-14, max_iterations=500)
        assert res.converged
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(res.x, x_ref, atol=1e-5)

    def test_residual_decreases(self, problem):
        a, b = problem
        res = block_cg(a, b, tol=1e-14)
        assert res.residual_history[-1] < res.residual_history[0] * 1e-6

    def test_block_converges_no_slower_than_single(self, problem):
        a, b = problem
        single = classic_cg(a, b[:, 0], tol=1e-8)
        block = block_cg(a, b, tol=1e-8)
        assert block.converged and single.converged
        assert block.iterations <= single.iterations + 2

    def test_classic_cg_n1(self, problem):
        a, b = problem
        res = classic_cg(a, b[:, 0], tol=1e-14)
        assert res.converged
        assert res.x.shape == (256,)
        x_ref = spla.spsolve(a.tocsc(), b[:, 0])
        assert np.allclose(res.x, x_ref, atol=1e-5)

    def test_shape_validation(self, problem):
        a, _ = problem
        with pytest.raises(ValueError):
            block_cg(a, np.ones((7, 2)))
        with pytest.raises(ValueError):
            block_cg(sp.eye(3).tocsr()[:2], np.ones(2))


class TestBiCgStab:
    def test_converges_on_nonsymmetric(self):
        rng = np.random.default_rng(3)
        n = 200
        a = sp.eye(n) * 4 + sp.random(n, n, density=0.02, random_state=3)
        b = rng.standard_normal(n)
        res = bicgstab(a.tocsr(), b, tol=1e-10, max_iterations=500)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)

    def test_block_variant(self):
        a = poisson2d(10)
        rng = np.random.default_rng(0)
        b = rng.standard_normal((100, 3))
        res = block_bicgstab(a, b, tol=1e-10)
        assert res.converged
        assert res.x.shape == (100, 3)
        assert np.allclose(a @ res.x, b, atol=1e-5)


class TestReferenceExecutor:
    def test_einsum_expr_gemm(self):
        dag = build_cg_dag(CgProblem(matrix=spec_of(poisson2d(4), "p"), n=2, iterations=1))
        op = dag.op("2a:gram@0")
        # P(k2,np), S(k2,n) -> Delta(np,n): "ab,ac->bc"
        assert einsum_expr(op) == "ab,ac->bc"

    def test_cg_dag_matches_solver_exactly(self):
        """Executing the DAG reproduces block_cg's iterates bit-for-bit."""
        a = poisson2d(12)
        spec = spec_of(a, "poisson144")
        rng = np.random.default_rng(5)
        b = rng.standard_normal((144, 4))
        iters = 5
        dag = build_cg_dag(CgProblem(matrix=spec, n=4, iterations=iters))
        produced = execute_cg_dag(dag, a, b)
        # Run the standalone solver for the same number of iterations with
        # convergence disabled (tol=0 never triggers).
        res = block_cg(a, b, tol=0.0, max_iterations=iters)
        assert np.allclose(produced[f"X@{iters}"], res.x, rtol=1e-12, atol=1e-12)

    def test_cg_dag_solution_converges(self):
        a = poisson2d(12)
        spec = spec_of(a, "p")
        rng = np.random.default_rng(5)
        b = rng.standard_normal((144, 4))
        dag = build_cg_dag(CgProblem(matrix=spec, n=4, iterations=40))
        produced = execute_cg_dag(dag, a, b)
        x = produced["X@40"]
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-8

    def test_gnn_dag_executes_generically(self):
        from repro.solvers.reference import GNN_SEMANTICS
        from repro.workloads.matrices import spec_of

        m = 50
        adj = sp.random(m, m, density=0.1, random_state=0, format="csr")
        adj.data[:] = 1.0
        g = GnnProblem(graph=spec_of(adj, "toy"), in_features=8, out_features=3)
        dag = build_gnn_dag(g)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((m, 8))
        w = rng.standard_normal((8, 3))
        out = execute_dag(dag, {"Adj": adj, "X@0": x, "W@0": w},
                          semantics=GNN_SEMANTICS)
        assert np.allclose(out["H@0"], (adj @ x) @ w)

    def test_missing_input_raises(self):
        dag = build_gnn_dag(GnnProblem(graph=MatrixSpec("t", 10, 20),
                                       in_features=4, out_features=2))
        with pytest.raises(KeyError):
            execute_dag(dag, {}, semantics={})

    def test_shape_mismatch_detected(self):
        dag = build_cg_dag(CgProblem(matrix=MatrixSpec("t", 8, 16), n=2, iterations=1))
        bad = {
            "A": sp.eye(8).tocsr(),
            "P@0": np.ones((8, 2)),
            "R@0": np.ones((8, 2)),
            "X@0": np.ones((8, 2)),
            "Gamma@0": np.ones((3, 3)),  # wrong shape propagates
        }
        with pytest.raises(ValueError):
            execute_dag(dag, bad, semantics=CG_SEMANTICS)
