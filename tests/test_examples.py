"""Smoke tests for the example scripts.

Every example must parse, and the fast ones run end-to-end with reduced
parameters (the full versions are exercised manually / in benches).
"""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleHygiene:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLE_FILES}
        assert {
            "quickstart.py",
            "cg_solver.py",
            "gnn_layer.py",
            "resnet_block.py",
            "bicgstab_solver.py",
            "design_space.py",
            "chord_observability.py",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_has_main_guard_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"
        src = path.read_text()
        assert 'if __name__ == "__main__":' in src

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_uses_public_api_only(self, path):
        """Examples must demonstrate the public API: no private (_-prefixed)
        attribute access on repro modules."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
                # engine.last_chord etc. are public; only reject _private.
                assert not node.attr.startswith("_"), (
                    f"{path.name} touches private attribute {node.attr}"
                )


class TestFastExampleExecution:
    def test_resnet_block_example_runs(self, capsys):
        """The ResNet example is light enough to run whole."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "example_resnet", EXAMPLES_DIR / "resnet_block.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.main()
        out = capsys.readouterr().out
        assert "delayed_hold" in out
        assert "compute" in out
