"""Concurrent-writer safety of the persistent result store.

The service daemon appends from several threads, and independent CLI
processes may share one cache directory with a running daemon.  These
tests stress both paths and pin the load-time semantics: atomic whole
lines, first-record-wins dedup, and merge-on-reload.
"""

import json
import multiprocessing
import threading

import pytest

from repro.orchestrator.store import ResultStore
from repro.sim.results import SimResult


def make_result(workload: str, tag: int) -> SimResult:
    return SimResult(
        config="CELLO", workload=workload, total_macs=1000 + tag,
        dram_read_bytes=64 * tag, dram_write_bytes=32 * tag,
        compute_s=1e-6, memory_s=2e-6, onchip_accesses={"chord": tag},
    )


def make_key(workload: str, tag: int):
    """A traffic-key-shaped tuple (workload at position 1, like
    :func:`repro.orchestrator.store.result_key` produces)."""
    return ("CELLO", workload, 4 << 20, 16, 8, 64, 0.125, 32768, tag)


def _process_writer(directory: str, worker_id: int, n_private: int,
                    n_shared: int) -> None:
    """One writer process: private keys plus keys every worker writes."""
    store = ResultStore(directory)
    for i in range(n_private):
        store.put(make_key(f"w{worker_id}", i), make_result(f"w{worker_id}", i))
    for i in range(n_shared):
        # Same key AND same payload from every worker: simulations are
        # deterministic, so racing writers only duplicate, never conflict.
        store.put(make_key("shared", i), make_result("shared", i))


class TestMultiprocessStress:
    N_WORKERS = 4
    N_PRIVATE = 40
    N_SHARED = 12

    def test_concurrent_process_writers(self, tmp_path):
        directory = str(tmp_path / "store")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("no fork start method on this platform")
        procs = [
            ctx.Process(target=_process_writer,
                        args=(directory, w, self.N_PRIVATE, self.N_SHARED))
            for w in range(self.N_WORKERS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        # Every line on disk parses whole — no torn interleavings.
        store = ResultStore(directory)
        lines = store.path.read_text(encoding="utf-8").splitlines()
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"v", "key", "result"}

        distinct = self.N_WORKERS * self.N_PRIVATE + self.N_SHARED
        assert len(store) == distinct
        assert store.stale == 0
        # Shared keys raced: whatever extra lines landed are counted as
        # duplicates and skipped on load.
        assert store.duplicates == len(lines) - distinct
        counts = store.workload_counts()
        assert counts["shared"] == self.N_SHARED
        for w in range(self.N_WORKERS):
            assert counts[f"w{w}"] == self.N_PRIVATE
        # Loaded values round-trip.
        got = store.get(make_key("shared", 3))
        assert got is not None
        assert got.to_dict() == make_result("shared", 3).to_dict()


class TestThreadedWriters:
    def test_concurrent_thread_writers_one_store(self, tmp_path):
        """The daemon path: many threads share one ResultStore object."""
        store = ResultStore(tmp_path / "store")
        n_threads, n_each = 8, 30

        def writer(worker_id):
            for i in range(n_each):
                store.put(make_key(f"t{worker_id}", i),
                          make_result(f"t{worker_id}", i))
                store.put(make_key("common", i), make_result("common", i))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(store) == n_threads * n_each + n_each
        # A fresh load sees exactly the same index (every line whole, the
        # common keys written once thanks to the in-process index check).
        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == len(store)
        assert fresh.duplicates == 0


class TestLoadSemantics:
    def test_duplicate_keys_first_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = make_key("dup", 0)
        store.put(key, make_result("dup", 1))
        # Forge a second record for the same key directly on disk, as a
        # racing process that lost the append race would have.
        record = {"v": store.schema_version,
                  "key": list(key),
                  "result": make_result("dup", 2).to_dict()}
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")

        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == 1
        assert fresh.duplicates == 1
        assert fresh.get(key).total_macs == make_result("dup", 1).total_macs

    def test_reload_merges_external_appends(self, tmp_path):
        a = ResultStore(tmp_path / "store")
        a.put(make_key("mine", 0), make_result("mine", 0))
        b = ResultStore(tmp_path / "store")
        b.put(make_key("theirs", 0), make_result("theirs", 0))

        assert a.get(make_key("theirs", 0)) is None
        assert a.reload() == 1
        assert a.get(make_key("theirs", 0)) is not None
        assert a.get(make_key("mine", 0)) is not None
        # Reloading again is a no-op.
        assert a.reload() == 0

    def test_reload_keeps_memory_only_entries(self, tmp_path, capsys):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("file, not a directory")
        store = ResultStore(blocked / "store")
        store.put(make_key("mem", 0), make_result("mem", 0))  # write fails
        capsys.readouterr()
        assert store.reload() == 0
        assert store.get(make_key("mem", 0)) is not None

    def test_corrupt_lines_are_counted_and_warned_once(self, tmp_path,
                                                       capsys):
        store = ResultStore(tmp_path / "store")
        store.put(make_key("ok", 0), make_result("ok", 0))
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 3, "key": [truncated mid-wri\n')

        fresh = ResultStore(tmp_path / "store")
        captured = capsys.readouterr()
        assert fresh.corrupt == 1
        assert len(fresh) == 1  # intact records survive the bad line
        assert fresh.get(make_key("ok", 0)) is not None
        assert "1 corrupt (undecodable) record(s)" in captured.err
        assert "+1 corrupt" in fresh.describe()

        # A reload that finds nothing new must not warn again (the
        # counter is a health signal, not a nag)...
        fresh.reload()
        assert capsys.readouterr().err == ""
        # ...but growth warns once more: corruption while running means
        # the disk or a writer is sick *now*.
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("\xff\xfe not json either\n")
        fresh.reload()
        assert fresh.corrupt == 2
        assert "2 corrupt" in capsys.readouterr().err

    def test_clear_resets_the_corrupt_counter(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        store.put(make_key("ok", 0), make_result("ok", 0))
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("garbage\n")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.corrupt == 1
        fresh.clear()
        capsys.readouterr()
        assert fresh.corrupt == 0
        # And a clean file loads clean again.
        again = ResultStore(tmp_path / "store")
        assert again.corrupt == 0 and len(again) == 0
        assert capsys.readouterr().err == ""

    def test_describe_reports_per_workload_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for i in range(3):
            store.put(make_key("cg/fv1/N=1", i), make_result("cg/fv1/N=1", i))
        store.put(make_key("gnn/cora", 0), make_result("gnn/cora", 0))
        text = store.describe()
        assert "schema version:" in text
        assert "cg/fv1/N=1" in text and "3 entries" in text
        assert "gnn/cora" in text and "1 entry" in text
