"""Tests for repro.core.intensity (Eq. 3/4, roofline — Fig. 2)."""

import pytest

from repro.core.intensity import (
    Roofline,
    best_arithmetic_intensity,
    best_arithmetic_intensity_words,
    effective_intensity,
    gemm_macs,
    gemm_min_dram_words,
    skewed_limit_words,
)


class TestIntensity:
    def test_gemm_macs(self):
        assert gemm_macs(512, 512, 512) == 512 ** 3

    def test_min_words(self):
        assert gemm_min_dram_words(2, 3, 4) == 2 * 3 + 3 * 4 + 2 * 4

    def test_paper_regular_gemm(self):
        # Fig. 2(a): 512^3 GEMM has 42.66 ops/byte at 32-bit words.
        ai = best_arithmetic_intensity(512, 512, 512, word_bytes=4)
        assert ai == pytest.approx(42.66, abs=0.01)

    def test_paper_skewed_gemm(self):
        # Fig. 2(a): 524288x16x16 has ~2 ops/byte.
        ai = best_arithmetic_intensity(524288, 16, 16, word_bytes=4)
        assert ai == pytest.approx(2.0, rel=0.01)

    def test_same_macs_different_intensity(self):
        assert gemm_macs(512, 512, 512) == gemm_macs(524288, 16, 16)

    def test_skewed_limit_is_n_over_2(self):
        # Eq. 4: lim AI = N/2 ops/word.
        assert skewed_limit_words(16) == 8.0
        # The finite case approaches the limit from below as M grows.
        for m in (10_000, 100_000, 1_000_000):
            ai = best_arithmetic_intensity_words(m, 16, 16)
            assert ai < 8.0
        assert best_arithmetic_intensity_words(10**7, 16, 16) == pytest.approx(8.0, rel=0.01)

    def test_effective_intensity(self):
        assert effective_intensity(100, 50) == 2.0
        assert effective_intensity(100, 0) == float("inf")


class TestRoofline:
    def test_ridge(self):
        rl = Roofline(peak_ops_per_s=16384e9, bandwidth_bytes_per_s=1e12)
        assert rl.ridge_intensity == pytest.approx(16.384)

    def test_attainable_clamps_to_peak(self):
        rl = Roofline(peak_ops_per_s=1e12, bandwidth_bytes_per_s=1e11)
        assert rl.attainable(5.0) == 5e11          # memory bound
        assert rl.attainable(100.0) == 1e12        # compute bound

    def test_memory_bound_flag(self):
        rl = Roofline(peak_ops_per_s=1e12, bandwidth_bytes_per_s=1e11)
        assert rl.is_memory_bound(5.0)
        assert not rl.is_memory_bound(50.0)

    def test_series(self):
        rl = Roofline(peak_ops_per_s=1e12, bandwidth_bytes_per_s=1e11)
        pts = rl.series([1.0, 10.0, 100.0])
        assert pts[0] == (1.0, 1e11)
        assert pts[2][1] == 1e12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Roofline(peak_ops_per_s=0, bandwidth_bytes_per_s=1)
        rl = Roofline(peak_ops_per_s=1, bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            rl.attainable(0)
