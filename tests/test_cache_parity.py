"""Golden-parity suite: the vectorized cache backend must be byte-identical
to the scalar reference backend.

The vector backend resolves accesses in conflict-free batches; these tests
pit it against the original per-access scalar loop on randomized and
adversarial traces (same-set conflict storms, write-allocate mixes,
flushes) for every policy, requiring exact :class:`BufferStats` equality
and identical final tag/dirty state.  Also covers the streaming trace
iterator (laziness + equality with the eager form) and the segment
chunking path.
"""

import itertools
import random

import numpy as np
import pytest

from repro.buffers.brrip import BrripPolicy
from repro.buffers.cache import SetAssociativeCache, supports_vector
from repro.buffers.lru import LruPolicy
from repro.buffers.srrip import SrripPolicy
from repro.hw.config import AcceleratorConfig
from repro.sim.address_map import AddressMap
from repro.sim.engine import CacheEngine
from repro.sim.trace import (
    StreamSegment,
    iter_program_trace,
    program_trace,
    program_trace_bytes,
    trace_bytes,
)
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.matrices import FV1

POLICIES = {
    "lru": LruPolicy,
    "brrip": BrripPolicy,
    "srrip": SrripPolicy,
}


def pair(policy_name, capacity=4096, line=16, assoc=4):
    """A (reference, vector) cache pair with independent policy instances."""
    ref = SetAssociativeCache(capacity, line, assoc,
                              POLICIES[policy_name](), backend="reference")
    vec = SetAssociativeCache(capacity, line, assoc,
                              POLICIES[policy_name](), backend="vector")
    return ref, vec


def assert_identical(ref, vec):
    assert vec.stats.as_dict() == ref.stats.as_dict()
    # Same lines resident per set (way assignment may legally differ only
    # in ordering for policies, but both backends fill invalid ways
    # first-to-last and victimise identically, so require exact equality).
    np.testing.assert_array_equal(vec._tags, ref._tags)
    np.testing.assert_array_equal(vec._dirty, ref._dirty)


def replay_segments(cache, segments, chunk_accesses=None):
    if chunk_accesses is None:
        cache.access_segments(iter(segments))
    else:
        cache.access_segments(iter(segments), chunk_accesses=chunk_accesses)


class TestRandomizedParity:
    @pytest.mark.parametrize(
        "policy,seed", list(itertools.product(POLICIES, range(4)))
    )
    def test_random_segment_traces(self, policy, seed):
        rng = random.Random(1000 * seed + hash(policy) % 1000)
        segments = []
        for _ in range(300):
            start = rng.randrange(0, 1 << 16)
            nbytes = rng.randrange(1, 600)
            segments.append(StreamSegment(
                "T", start, nbytes, is_write=rng.random() < 0.4
            ))
        ref, vec = pair(policy)
        replay_segments(ref, segments)
        replay_segments(vec, segments)
        assert_identical(ref, vec)
        ref.flush()
        vec.flush()
        assert vec.stats.as_dict() == ref.stats.as_dict()

    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_random_line_streams(self, policy):
        rng = random.Random(7)
        blocks = [rng.randrange(0, 512) for _ in range(4000)]
        writes = [rng.random() < 0.3 for _ in range(4000)]
        ref, vec = pair(policy, capacity=8192, assoc=8)
        got_ref = [ref.access_line(b, w) for b, w in zip(blocks, writes)]
        got_vec = [vec.access_line(b, w) for b, w in zip(blocks, writes)]
        assert got_vec == got_ref
        assert_identical(ref, vec)

    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_chunking_invariance(self, policy):
        """Chunk size must not change results (batches never span chunks,
        but state carries across them)."""
        rng = random.Random(11)
        segments = [
            StreamSegment("T", rng.randrange(0, 1 << 14),
                          rng.randrange(1, 400), rng.random() < 0.5)
            for _ in range(200)
        ]
        ref, _ = pair(policy)
        replay_segments(ref, segments)
        for chunk in (1, 7, 64, 100_000):
            _, vec = pair(policy)
            replay_segments(vec, segments, chunk_accesses=chunk)
            assert_identical(ref, vec)


class TestAdversarialParity:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_same_set_conflict_storm(self, policy):
        """Every access maps to set 0: batches degrade to singletons."""
        ref, vec = pair(policy, capacity=1024, line=16, assoc=4)  # 16 sets
        rng = random.Random(3)
        blocks = [16 * rng.randrange(0, 12) for _ in range(1500)]
        writes = [rng.random() < 0.5 for _ in range(1500)]
        for b, w in zip(blocks, writes):
            ref.access_line(b, w)
        vec._simulate_blocks(np.array(blocks, dtype=np.int64),
                             np.array(writes, dtype=bool))
        assert_identical(ref, vec)

    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_write_allocate_then_flush(self, policy):
        """Write misses allocate dirty; eviction + flush writebacks match."""
        ref, vec = pair(policy, capacity=512, line=16, assoc=2)  # 16 sets
        segments = (
            [StreamSegment("W", i * 16, 16, True) for i in range(64)]
            + [StreamSegment("R", i * 16, 16, False) for i in range(64)]
            + [StreamSegment("W2", i * 16, 16, True) for i in range(32)]
        )
        replay_segments(ref, segments)
        replay_segments(vec, segments)
        assert_identical(ref, vec)
        ref.flush()
        vec.flush()
        assert vec.stats.as_dict() == ref.stats.as_dict()
        assert vec.stats.writebacks > 0  # the scenario actually wrote back

    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_scan_after_reuse(self, policy):
        """The Fig. 11 shape: a hot working set, a scan, then re-reads —
        the trace where LRU and (B/S)RRIP genuinely diverge."""
        ref, vec = pair(policy, capacity=256, line=16, assoc=4)  # 4 sets
        ws = [0, 4, 8]            # all in set 0
        trace = []
        for _ in range(6):
            trace.extend((b, False) for b in ws)
        trace.extend((100 + 4 * i, False) for i in range(24))
        trace.extend((b, False) for b in ws)
        for b, w in trace:
            ref.access_line(b, w)
        vec._simulate_blocks(np.array([b for b, _ in trace], dtype=np.int64),
                             np.array([w for _, w in trace], dtype=bool))
        assert_identical(ref, vec)

    def test_brrip_bimodal_counter_order(self):
        """The bimodal throttle is a *global* fill counter: a trace with >
        throttle fills must place the rare long insertions identically
        (this is why fills are handed to vec_on_fill in trace order)."""
        ref = SetAssociativeCache(2048, 16, 4, BrripPolicy(bimodal_throttle=8),
                                  backend="reference")
        vec = SetAssociativeCache(2048, 16, 4, BrripPolicy(bimodal_throttle=8),
                                  backend="vector")
        # Streaming misses across many sets, then re-touch: hit pattern is
        # sensitive to which fills were long vs distant.
        segments = [StreamSegment("S", i * 16, 16, False) for i in range(400)]
        segments += [StreamSegment("S", i * 16, 16, False) for i in range(400)]
        replay_segments(ref, segments)
        replay_segments(vec, segments)
        assert_identical(ref, vec)
        assert ref.policy._fill_counter == vec.policy._fill_counter

    def test_empty_and_degenerate_segments(self):
        ref, vec = pair("lru")
        segments = [
            StreamSegment("Z", 0, 0, False),      # empty: no accesses
            StreamSegment("A", 5, 1, True),       # sub-line
            StreamSegment("B", 15, 2, False),     # straddles a line boundary
        ]
        replay_segments(ref, segments)
        replay_segments(vec, segments)
        assert_identical(ref, vec)
        assert vec.stats.accesses == 3


class TestBackendSelection:
    def test_auto_picks_vector_for_builtin_policies(self):
        for policy in (LruPolicy(), BrripPolicy(), SrripPolicy()):
            assert supports_vector(policy)
            assert SetAssociativeCache(1024, 16, 4, policy).backend == "vector"

    def test_scalar_only_policy_falls_back(self):
        class ScalarOnly:
            def make_set_state(self, assoc):
                return list(range(assoc))

            def on_hit(self, state, way):
                pass

            def choose_victim(self, state):
                return state[0]

            def on_fill(self, state, way):
                pass

        cache = SetAssociativeCache(1024, 16, 4, ScalarOnly())
        assert cache.backend == "reference"
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 16, 4, ScalarOnly(), backend="vector")
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 16, 4, LruPolicy(), backend="nope")

    def test_reference_segments_path_matches_ranges(self):
        """access_segments on the reference backend = the old loop."""
        a = SetAssociativeCache(1024, 16, 4, LruPolicy(), backend="reference")
        b = SetAssociativeCache(1024, 16, 4, LruPolicy(), backend="reference")
        segments = [StreamSegment("T", i * 40, 60, i % 2 == 0)
                    for i in range(50)]
        a.access_segments(iter(segments))
        for s in segments:
            b.access_range(s.start, s.nbytes, s.is_write)
        assert a.stats.as_dict() == b.stats.as_dict()


class TestEngineParity:
    def test_cache_engine_backends_identical(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=1))
        for policy_cls in (LruPolicy, BrripPolicy):
            vec = CacheEngine(AcceleratorConfig(), policy_cls(),
                              granularity=4, backend="vector").run(dag)
            ref = CacheEngine(AcceleratorConfig(), policy_cls(),
                              granularity=4, backend="reference").run(dag)
            assert vec.dram_read_bytes == ref.dram_read_bytes
            assert vec.dram_write_bytes == ref.dram_write_bytes
            assert vec.onchip_accesses == ref.onchip_accesses


class TestStreamingTrace:
    @pytest.fixture(scope="class")
    def cg(self):
        dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2))
        return dag, AddressMap.for_dag(dag, line_bytes=16)

    def test_iterator_matches_eager(self, cg):
        dag, amap = cg
        assert list(iter_program_trace(dag, amap)) == program_trace(dag, amap)

    def test_program_trace_bytes_matches_trace(self, cg):
        dag, amap = cg
        assert program_trace_bytes(dag) == trace_bytes(program_trace(dag, amap))

    def test_trace_is_lazy(self, cg):
        """Bounded memory: pulling the first segment must not touch tensors
        of later ops (one op's segments are materialized at a time)."""
        dag, amap = cg

        class SpyMap:
            def __init__(self, inner):
                self.inner = inner
                self.queried = set()

            def get(self, name):
                self.queried.add(name)
                return self.inner.get(name)

        spy = SpyMap(amap)
        it = iter_program_trace(dag, spy)
        next(it)
        first_op_tensors = {t.name for t in dag.ops[0].inputs}
        first_op_tensors.add(dag.ops[0].output.name)
        assert spy.queried <= first_op_tensors
        all_tensors = {t.name for t in dag.tensors}
        assert spy.queried < all_tensors  # strictly fewer than the program

    def test_trace_bytes_consumes_iterator(self, cg):
        dag, amap = cg
        assert trace_bytes(iter_program_trace(dag, amap)) == \
            program_trace_bytes(dag)
