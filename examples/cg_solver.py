#!/usr/bin/env python
"""End-to-end block CG: numerics + accelerator simulation on one problem.

Builds a synthetic SPD system shaped like the paper's fv1 dataset, solves
it numerically with block CG (Algorithm 1), validates the tensor DAG
against the solver, then simulates how CELLO would execute the same
iteration count versus the op-by-op oracle.

Run:  python examples/cg_solver.py
"""

import numpy as np

from repro.baselines import run_workload_config
from repro.hw import AcceleratorConfig
from repro.solvers import block_cg, execute_cg_dag
from repro.workloads import FV1, cg_workload, spec_of, synthesize


def main() -> None:
    # --- numerics ---------------------------------------------------------
    a = synthesize(FV1)  # SPD, same M and ~same nnz as SuiteSparse fv1
    spec = spec_of(a, "fv1-synthetic")
    print(f"matrix: M={spec.m}, nnz={spec.nnz} ({spec.nnz_per_row:.1f}/row)")

    rng = np.random.default_rng(42)
    n = 8  # block width: 8 simultaneous right-hand sides
    b = rng.standard_normal((spec.m, n))

    res = block_cg(a, b, tol=1e-10, max_iterations=400)
    print(
        f"block CG (N={n}): converged={res.converged} in {res.iterations} "
        f"iterations, residual {res.final_residual:.2e}"
    )
    rel_err = np.linalg.norm(a @ res.x - b) / np.linalg.norm(b)
    print(f"relative residual of solution: {rel_err:.2e}")

    # --- DAG validation ------------------------------------------------------
    iters = 5
    w = cg_workload(spec, n=n, iterations=iters)
    dag = w.build()
    produced = execute_cg_dag(dag, a, b)
    ref = block_cg(a, b, tol=0.0, max_iterations=iters)
    err = np.max(np.abs(produced[f"X@{iters}"] - ref.x))
    print(f"\nDAG-vs-solver max abs difference after {iters} iterations: {err:.2e}")
    assert err < 1e-12, "the tensor DAG must replay Algorithm 1 exactly"

    # --- accelerator simulation -------------------------------------------------
    cfg = AcceleratorConfig()
    print(f"\nsimulating {w.name} on {cfg.describe()}")
    flex = run_workload_config(w, "Flexagon", cfg)
    cello = run_workload_config(w, "CELLO", cfg)
    print(f"Flexagon : {flex.dram_bytes / 1e6:8.2f} MB DRAM, {flex.time_s * 1e6:8.2f} us")
    print(f"CELLO    : {cello.dram_bytes / 1e6:8.2f} MB DRAM, {cello.time_s * 1e6:8.2f} us")
    print(f"speedup  : {cello.speedup_over(flex):.2f}x")


if __name__ == "__main__":
    main()
