#!/usr/bin/env python
"""ResNet conv3_x residual block: the delayed-hold dependency (Fig. 16a).

The skip connection's tensor rides the pipeline buffer as *held* tiles
until the residual add consumes it — the capability SET shares with CELLO
and FLAT lacks.  Shows classification, SCORE's realized holds, and the
resulting traffic/performance at both bandwidth points.

Run:  python examples/resnet_block.py
"""

from repro.baselines import run_workload_config
from repro.core import DependencyType, classify_dependencies
from repro.hw import AcceleratorConfig, GB
from repro.score import Score
from repro.workloads import ResNetBlockProblem, build_resnet_block_dag, resnet_workload


def main() -> None:
    problem = ResNetBlockProblem()
    dag = build_resnet_block_dag(problem)
    print(
        f"conv3_x bottleneck block: {problem.spatial}x{problem.spatial} maps, "
        f"{problem.block_channels}/{problem.bottleneck_channels} channels, "
        f"{problem.word_bytes * 8}-bit words"
    )

    classified = classify_dependencies(dag)
    skip = classified.dependency[("pre:conv", "add:residual@0", "T0@0")]
    print(f"skip-connection edge: {skip.value}")
    assert skip is DependencyType.DELAYED_HOLD

    cfg = AcceleratorConfig()
    schedule = Score(cfg).schedule(dag)
    print(f"realized pipelines: {schedule.n_pipelined_edges}, holds: {schedule.n_held_edges}")
    hold = next(iter(schedule.holds.values()))
    print(
        f"hold window: {hold.depth} intervening stages, "
        f"{hold.window_bytes / 1024:.0f} KB of pipeline buffer"
    )

    configs = ("Flexagon", "FLAT", "SET", "CELLO")
    w = resnet_workload(problem)
    for bw in (1000 * GB, 250 * GB):
        c = cfg.with_bandwidth(bw)
        print(f"\n--- {bw / GB:.0f} GB/s ---")
        print(f"{'config':10s} {'DRAM MB':>9s} {'time us':>9s} {'bound':>8s}")
        for name in configs:
            r = run_workload_config(w, name, c)
            bound = "memory" if r.memory_bound else "compute"
            print(
                f"{name:10s} {r.dram_bytes / 1e6:9.3f} {r.time_s * 1e6:9.2f} {bound:>8s}"
            )
    print(
        "\nAt 1 TB/s everything is compute bound (equal time); at 250 GB/s the "
        "op-by-op baseline\ngoes memory bound while SET == CELLO stay on the "
        "compute roof (paper Fig. 16a)."
    )


if __name__ == "__main__":
    main()
