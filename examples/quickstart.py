#!/usr/bin/env python
"""Quickstart: classify a CG DAG, schedule it with SCORE, and compare
CELLO against the Table IV baselines.

Run:  python examples/quickstart.py
"""

from repro.baselines import run_workload_config
from repro.core import DependencyType, classify_dependencies
from repro.hw import AcceleratorConfig
from repro.workloads import FV1, cg_workload


def main() -> None:
    cfg = AcceleratorConfig()  # Table V defaults: 4MB SRAM, 16384 MACs, 1TB/s
    print(cfg.describe())

    # 1. Build the block-CG tensor dependency DAG (Algorithm 1, Fig. 1).
    workload = cg_workload(FV1, n=16, iterations=10)
    dag = workload.build()
    print(f"\nWorkload: {workload.description}")
    print(f"DAG: {len(dag)} ops, {len(dag.tensors)} tensors")

    # 2. Classify tensor-level dependencies (Algorithm 2).
    classified = classify_dependencies(dag)
    summary = classified.summary()
    print("\nDependency classes (Algorithm 2):")
    for dep in DependencyType:
        print(f"  {dep.value:18s} {summary[dep.value]:4d} edges")
    print(
        "  -> S and R pipeline into their Gram consumers but ALSO have "
        "delayed-writeback\n     consumers, which only CHORD can serve on-chip."
    )

    # 3. Run every configuration and compare.
    configs = ("Flexagon", "FLAT", "SET", "PRELUDE-only", "CELLO")
    print(f"\n{'config':14s} {'DRAM MB':>10s} {'time us':>10s} {'GMAC/s':>10s} {'speedup':>8s}")
    results = {c: run_workload_config(workload, c, cfg) for c in configs}
    base = results["Flexagon"]
    for c in configs:
        r = results[c]
        print(
            f"{c:14s} {r.dram_bytes / 1e6:10.2f} {r.time_s * 1e6:10.2f} "
            f"{r.throughput_gmacs:10.1f} {r.speedup_over(base):7.2f}x"
        )

    cello = results["CELLO"]
    print(
        f"\nCELLO eliminates {100 * cello.dram_reduction_vs(base):.0f}% of DRAM "
        f"traffic vs the best op-by-op schedule\n(paper Fig. 14: 64-83% across "
        "workloads), lifting effective intensity from "
        f"{base.effective_intensity:.2f} to {cello.effective_intensity:.2f} ops/byte."
    )


if __name__ == "__main__":
    main()
