#!/usr/bin/env python
"""BiCGStab on a NASA4704-shaped problem (Fig. 13's second solver).

BiCGStab has even more delayed-writeback tensors per iteration than CG
(S feeds four downstream ops), so the CELLO-vs-pipelining gap persists.

Run:  python examples/bicgstab_solver.py
"""

import numpy as np

from repro.baselines import run_workload_config
from repro.core import DependencyType, classify_dependencies
from repro.hw import AcceleratorConfig
from repro.solvers import bicgstab
from repro.workloads import NASA4704, bicgstab_workload, spec_of, synthesize


def main() -> None:
    # --- numerics -----------------------------------------------------------
    a = synthesize(NASA4704)
    spec = spec_of(a, "nasa4704-synthetic")
    print(f"matrix: M={spec.m}, nnz={spec.nnz} ({spec.nnz_per_row:.1f}/row)")
    rng = np.random.default_rng(0)
    b = rng.standard_normal(spec.m)
    res = bicgstab(a, b, tol=1e-10, max_iterations=2000)
    print(
        f"BiCGStab: converged={res.converged} in {res.iterations} iterations, "
        f"relative residual {res.final_residual:.2e}"
    )

    # --- dependency census ---------------------------------------------------
    w = bicgstab_workload(spec, n=1, iterations=10)
    dag = w.build()
    summary = classify_dependencies(dag).summary()
    print(
        f"\nDAG: {len(dag)} ops; "
        f"{summary[DependencyType.DELAYED_WRITEBACK.value]} delayed-writeback edges, "
        f"{summary[DependencyType.PIPELINEABLE.value]} pipelineable edges"
    )

    # --- accelerator comparison ------------------------------------------------
    cfg = AcceleratorConfig()
    print(f"\n{'config':14s} {'DRAM MB':>10s} {'GMAC/s':>10s}")
    base = None
    for c in ("Flexagon", "FLAT", "PRELUDE-only", "CELLO"):
        r = run_workload_config(w, c, cfg)
        base = base or r
        print(f"{c:14s} {r.dram_bytes / 1e6:10.2f} {r.throughput_gmacs:10.1f}")
    cello = run_workload_config(w, "CELLO", cfg)
    print(f"\nCELLO speedup over op-by-op oracle: {cello.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
