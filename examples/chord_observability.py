#!/usr/bin/env python
"""CHORD observability: occupancy timeline and per-tensor traffic audit.

Runs CELLO on a capacity-pressured CG problem and renders what the buffer
actually did: how full it stayed, which tensors hit, which spilled, which
were written back — the view a performance engineer would pull from the
real hardware's counters.

Run:  python examples/chord_observability.py
"""

from repro.chord import render_occupancy, traffic_audit
from repro.hw import AcceleratorConfig
from repro.score import Score
from repro.sim import ScheduleEngine
from repro.sim.cluster_timing import describe_clusters
from repro.workloads import SHALLOW_WATER1, cg_workload


def main() -> None:
    cfg = AcceleratorConfig()
    w = cg_workload(SHALLOW_WATER1, n=16, iterations=10)
    dag = w.build()
    print(f"workload: {w.description}")

    schedule = Score(cfg).schedule(dag)
    engine = ScheduleEngine(cfg)
    result = engine.run(schedule, workload_name=w.name)
    chord = engine.last_chord
    assert chord is not None

    print(
        f"\nDRAM traffic {result.dram_bytes / 1e6:.1f} MB, "
        f"CHORD hit rate {chord.stats.hit_rate * 100:.1f}% "
        f"({chord.stats.hits / 1e6:.1f} MB hits / "
        f"{chord.stats.misses / 1e6:.1f} MB misses)"
    )

    print("\n" + render_occupancy(chord, width=64, height=10))
    print("\n" + traffic_audit(chord, top=12))
    print("\n" + describe_clusters(schedule, cfg))
    print(
        "\nReading the audit: the skewed P/X tensors with iteration-distance "
        "reuse miss under\ncapacity pressure (RIFF deprioritises them), while "
        "S and R — reused within the\niteration — stay resident; exactly the "
        "policy behaviour Sec. VI-A describes."
    )


if __name__ == "__main__":
    main()
