#!/usr/bin/env python
"""Design-space tour: why CHORD exists (Sec. VI-B) and what its knobs do.

Walks the buffer-allocation search-space arithmetic, then sweeps CHORD
capacity and ablates RIFF/retirement to show where the traffic savings
come from.

Run:  python examples/design_space.py
"""

from repro.baselines import run_workload_config
from repro.hw import MIB, AcceleratorConfig
from repro.score import Score, compare_search_spaces
from repro.sim import EngineOptions, ScheduleEngine
from repro.workloads import SHALLOW_WATER1, cg_workload


def main() -> None:
    cfg = AcceleratorConfig()
    w = cg_workload(SHALLOW_WATER1, n=16, iterations=10)
    dag = w.build()

    # --- Sec. VI-B: the intractability CHORD removes -------------------------
    rep = compare_search_spaces(dag, size_words=cfg.sram_bytes // 4)
    print("Buffer-allocation search spaces (Sec. VI-B):")
    print(f"  op-by-op scratchpad   : ~1e{rep.log10_op_by_op:.0f} choices")
    print(f"  DAG-level scratchpad  : ~1e{rep.log10_scratchpad:.0f} choices")
    print(f"  CHORD                 : {rep.chord_points} design points (O(nodes+edges))")

    # --- CHORD capacity sweep (Fig. 16b) ---------------------------------------
    print("\nCHORD capacity sweep (CG, shallow_water1, N=16):")
    for sram in (1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB):
        r = run_workload_config(w, "CELLO", cfg.with_sram(sram))
        print(f"  {sram // MIB:3d} MB -> {r.dram_bytes / 1e6:8.1f} MB DRAM traffic")

    # --- mechanism ablations ------------------------------------------------------
    print("\nMechanism ablations (same schedule, 4 MB):")
    schedule = Score(cfg).schedule(dag)
    variants = {
        "full CELLO (RIFF + retire)": EngineOptions(),
        "PRELUDE-only (no RIFF)": EngineOptions(use_riff=False),
        "no retirement": EngineOptions(explicit_retire=False, chord_entries=4096),
        "neither": EngineOptions(use_riff=False, explicit_retire=False,
                                 chord_entries=4096),
    }
    for label, options in variants.items():
        r = ScheduleEngine(cfg, options).run(schedule, config_name=label)
        print(f"  {label:28s} -> {r.dram_bytes / 1e6:8.1f} MB DRAM traffic")

    print(
        "\nRIFF (reuse-distance/frequency replacement) and explicit retirement "
        "are both needed\nto keep the soonest-reused tensors resident — the "
        "co-design the paper argues for."
    )


if __name__ == "__main__":
    main()
