#!/usr/bin/env python
"""GCN layer on a cora-shaped citation graph (Table VI / Fig. 13).

Shows the aggregation-first schedule's pipelineable intermediate: the
skewed AX tensor streams straight from the SpMM into the combination GEMM,
so CELLO ties FLAT and both beat op-by-op execution.  Also executes the
layer numerically through the DAG.

Run:  python examples/gnn_layer.py
"""

import numpy as np

from repro.baselines import run_workload_config
from repro.core import classify_dependencies
from repro.hw import AcceleratorConfig
from repro.solvers import GNN_SEMANTICS, execute_dag
from repro.workloads import (
    cora_problem,
    build_gnn_dag,
    gnn_workload,
    graph_adjacency,
)


def main() -> None:
    problem = cora_problem()
    print(
        f"GCN layer on {problem.graph.name}: M={problem.graph.m} vertices, "
        f"N={problem.in_features} -> O={problem.out_features} features"
    )

    # --- dependency structure -----------------------------------------------
    dag = build_gnn_dag(problem)
    classified = classify_dependencies(dag)
    dep = classified.dependency[("agg@0", "comb@0", "AX@0")]
    print(f"AX edge classification: {dep.value} (single adjacent consumer)")

    # --- numerics on a small instance ---------------------------------------
    m, f_in, f_out = 200, 16, 4
    adj = graph_adjacency(m, 5 * m, seed=1)
    from repro.workloads import GnnProblem, spec_of

    small = GnnProblem(graph=spec_of(adj, "toy"), in_features=f_in, out_features=f_out)
    small_dag = build_gnn_dag(small)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((m, f_in))
    w = rng.standard_normal((f_in, f_out))
    out = execute_dag(small_dag, {"Adj": adj, "X@0": x, "W@0": w},
                      semantics=GNN_SEMANTICS)
    ref = (adj @ x) @ w
    print(f"numeric check (toy graph): max err {np.max(np.abs(out['H@0'] - ref)):.2e}")

    # --- accelerator comparison ----------------------------------------------
    cfg = AcceleratorConfig()
    wl = gnn_workload(problem)
    print(f"\n{'config':10s} {'DRAM MB':>10s} {'GMAC/s':>10s}")
    for c in ("Flexagon", "FLAT", "CELLO"):
        r = run_workload_config(wl, c, cfg)
        print(f"{c:10s} {r.dram_bytes / 1e6:10.2f} {r.throughput_gmacs:10.1f}")
    print(
        "\nFLAT == CELLO here (paper Sec. VII-B1): the only cross-op reuse is "
        "the pipelineable AX."
    )


if __name__ == "__main__":
    main()
