#!/usr/bin/env python3
"""Minimal Prometheus text-exposition validator (CI metrics-smoke job).

Validates scrapes of ``repro serve/gateway --prom-port`` without any
third-party dependency (promtool is not in the CI image):

1. **Syntax** — every non-comment line parses as
   ``name{labels} value`` with a valid metric name and a float value.
2. **Typing** — every sample's family (``_bucket``/``_sum``/``_count``
   collapse onto their histogram family) has a preceding ``# TYPE``
   line, and the declared type admits the sample's suffix.
3. **Histogram shape** — each histogram series (per label set minus
   ``le``) has cumulative, monotonically non-decreasing buckets ending
   in ``le="+Inf"``, plus matching ``_sum`` and ``_count`` samples with
   ``_count`` equal to the +Inf bucket.

Usage::

    python tools/check_prom.py scrape1.txt [scrape2.txt ...]
    some-command | python tools/check_prom.py -

Exit status 0 when every file is clean; 1 with a per-problem report.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Tuple

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped", "info")


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text.strip():
        return labels
    for part in text.split(","):
        m = _LABEL.match(part.strip())
        if m is None:
            raise ValueError(f"bad label pair {part.strip()!r}")
        labels[m.group("key")] = m.group("val")
    return labels


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Map a sample name to its declared family: histogram samples use
    the ``_bucket``/``_sum``/``_count`` suffixes, counters ``_total``."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def check_text(text: str, source: str = "<scrape>") -> List[str]:
    """All problems found in one exposition body (empty = clean)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    helps: set = set()
    # (family, labels-without-le) -> [(le, value)] for histogram checks
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[str, float]]] = {}
    sums: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue

        def problem(msg: str) -> None:
            problems.append(f"{source}:{lineno}: {msg}: {line!r}")

        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME.match(parts[2]):
                problem("malformed HELP line")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 4)
            if len(parts) != 4 or not _NAME.match(parts[2]):
                problem("malformed TYPE line")
                continue
            name, mtype = parts[2], parts[3]
            if mtype not in _TYPES:
                problem(f"unknown metric type {mtype!r}")
            if name in types:
                problem(f"duplicate TYPE for {name}")
            types[name] = mtype
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored

        m = _SAMPLE.match(line)
        if m is None:
            problem("unparseable sample line")
            continue
        name = m.group("name")
        try:
            labels = _parse_labels(m.group("labels") or "")
        except ValueError as exc:
            problem(str(exc))
            continue
        value_text = m.group("value")
        try:
            value = float(value_text)
        except ValueError:
            problem(f"non-numeric sample value {value_text!r}")
            continue

        family = _family_of(name, types)
        if family not in types:
            problem(f"sample for {name} has no # TYPE declaration")
            continue
        mtype = types[family]
        if mtype == "histogram":
            series = tuple(sorted((k, v) for k, v in labels.items()
                                  if k != "le"))
            key = (family, series)
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problem("histogram _bucket sample without an le label")
                    continue
                buckets.setdefault(key, []).append((labels["le"], value))
            elif name.endswith("_sum"):
                sums[key] = value
            elif name.endswith("_count"):
                counts[key] = value
            else:
                problem(f"histogram family {family} has a bare sample")
        elif mtype == "counter":
            if value < 0:
                problem("counter sample is negative")

    for (family, series), entries in sorted(buckets.items()):
        where = f"{source}: histogram {family}{dict(series) or ''}"
        les = [le for le, _ in entries]
        if les[-1] != "+Inf":
            problems.append(f"{where}: buckets do not end with le=\"+Inf\" "
                            f"(got {les})")
            continue
        finite = []
        for le in les[:-1]:
            try:
                finite.append(float(le))
            except ValueError:
                problems.append(f"{where}: non-numeric le {le!r}")
                break
        else:
            if finite != sorted(finite):
                problems.append(f"{where}: le bounds are not increasing")
            values = [v for _, v in entries]
            if any(b > a for a, b in zip(values[1:], values[:-1])):
                problems.append(
                    f"{where}: bucket counts are not cumulative "
                    f"(non-decreasing): {values}")
            if (family, series) not in sums:
                problems.append(f"{where}: missing _sum sample")
            count = counts.get((family, series))
            if count is None:
                problems.append(f"{where}: missing _count sample")
            elif count != values[-1]:
                problems.append(
                    f"{where}: _count {count} != +Inf bucket {values[-1]}")
    for (family, series) in sorted(set(sums) | set(counts)):
        if (family, series) not in buckets:
            problems.append(
                f"{source}: histogram {family}{dict(series) or ''} has "
                "_sum/_count but no _bucket samples")
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_prom.py FILE [FILE ...]  (or - for stdin)",
              file=sys.stderr)
        return 2
    problems: List[str] = []
    for path in argv:
        if path == "-":
            problems += check_text(sys.stdin.read(), "<stdin>")
        else:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    problems += check_text(fh.read(), path)
            except OSError as exc:
                problems.append(f"{path}: cannot read: {exc}")
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_prom: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_prom: {len(argv)} scrape(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
