#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh ``repro bench`` run against the
committed baseline (``BENCH_kernels.json``) with a generous threshold.

CI runners are noisy and the committed baseline was measured at full
size while CI runs ``--quick``, so only **size-independent rate metrics**
(`*_per_s`) are compared, and a regression only fails the gate when a
fresh rate drops below ``baseline / factor`` (default 10x — a real
algorithmic regression, not scheduler jitter).  Two structural checks
ride along:

* every benchmark present in the baseline must still exist in the fresh
  report (a silently dropped bench would otherwise pass forever);
* every benchmark present only in the fresh report fails the gate
  unless ``--allow-new`` is passed — a new bench must be added to the
  committed baseline deliberately, not slip past the gate unbaselined;
* the vectorised cache kernels must still beat the scalar reference
  (``speedup`` stays above ``--min-speedup``, default 1.5 — they are
  15-19x at parity today);
* the analytic traffic model must still be dramatically faster than the
  simulated path it replaces (``analytic_over_simulated`` stays above
  ``--min-analytic-speedup``, default 100 — several hundred x today;
  below that the hybrid tuner's fast path has stopped being fast);
* the batch analytic evaluator must still amortise the Python dispatch
  it exists to remove (``batch_over_pointwise`` stays above
  ``--min-batch-speedup``, default 50 — the columnar tuner path is
  pointless below that).

Usage::

    python tools/check_bench.py --baseline BENCH_kernels.json \
        --fresh BENCH_fresh.json [--factor 10] [--min-speedup 1.5] \
        [--min-analytic-speedup 100] [--min-batch-speedup 50] \
        [--allow-new]

Exit status 0 when clean; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: Rate metrics are comparable across workload sizes (quick vs full).
RATE_SUFFIX = "_per_s"


def load_report(path: str) -> Dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "results" not in data or not isinstance(data["results"], dict):
        raise SystemExit(f"{path}: not a bench report (no 'results' object)")
    return data


def compare(baseline: Dict, fresh: Dict, factor: float,
            min_speedup: float,
            min_analytic_speedup: float = 100.0,
            min_batch_speedup: float = 50.0,
            allow_new: bool = False) -> List[str]:
    problems: List[str] = []
    base_results = baseline["results"]
    fresh_results = fresh["results"]
    for name in sorted(set(fresh_results) - set(base_results)):
        # A fresh-only bench used to pass silently: nothing compared it,
        # so a typo'd rename (old name "missing", new name "new") or an
        # unbaselined bench never got a baseline at all.
        if allow_new:
            print(f"note: {name}: new benchmark not in the baseline "
                  "(allowed by --allow-new; baseline it with "
                  "'repro bench')")
        else:
            problems.append(
                f"{name}: present in the fresh report but not in the "
                "baseline — re-run 'repro bench' to baseline it, or pass "
                "--allow-new")
    for name, base in sorted(base_results.items()):
        got = fresh_results.get(name)
        if got is None:
            problems.append(f"{name}: present in baseline but missing from "
                            "the fresh report")
            continue
        for metric, base_value in sorted(base.items()):
            if not metric.endswith(RATE_SUFFIX):
                continue
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            fresh_value = got.get(metric)
            if not isinstance(fresh_value, (int, float)):
                problems.append(f"{name}.{metric}: missing from the fresh "
                                "report")
                continue
            floor = base_value / factor
            if fresh_value < floor:
                problems.append(
                    f"{name}.{metric}: {fresh_value:.3g} < {floor:.3g} "
                    f"(baseline {base_value:.3g} / factor {factor:g})")
        if "speedup" in base:
            fresh_speedup = got.get("speedup", 0.0)
            if not isinstance(fresh_speedup, (int, float)) \
                    or fresh_speedup < min_speedup:
                problems.append(
                    f"{name}.speedup: {fresh_speedup!r} < required "
                    f"{min_speedup:g} (vector kernel no longer beats the "
                    "scalar reference)")
        if "analytic_over_simulated" in base:
            fresh_ratio = got.get("analytic_over_simulated", 0.0)
            if not isinstance(fresh_ratio, (int, float)) \
                    or fresh_ratio < min_analytic_speedup:
                problems.append(
                    f"{name}.analytic_over_simulated: {fresh_ratio!r} < "
                    f"required {min_analytic_speedup:g} (the analytic "
                    "model no longer meaningfully outpaces simulation)")
        if "batch_over_pointwise" in base:
            fresh_batch = got.get("batch_over_pointwise", 0.0)
            if not isinstance(fresh_batch, (int, float)) \
                    or fresh_batch < min_batch_speedup:
                problems.append(
                    f"{name}.batch_over_pointwise: {fresh_batch!r} < "
                    f"required {min_batch_speedup:g} (the batch evaluator "
                    "no longer amortises per-point dispatch)")
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="committed baseline report (default "
                             "BENCH_kernels.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--factor", type=float, default=10.0,
                        help="allowed rate slowdown vs baseline "
                             "(default 10x — generous on purpose)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required vector-vs-reference cache-kernel "
                             "speedup (default 1.5)")
    parser.add_argument("--min-analytic-speedup", type=float, default=100.0,
                        help="required analytic-vs-simulated evaluation "
                             "speedup (default 100)")
    parser.add_argument("--min-batch-speedup", type=float, default=50.0,
                        help="required batch-vs-point-wise analytic "
                             "evaluation speedup (default 50)")
    parser.add_argument("--allow-new", action="store_true",
                        help="report benchmarks missing from the baseline "
                             "as notes instead of failures")
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error("--factor must be > 1")

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)
    problems = compare(baseline, fresh, args.factor, args.min_speedup,
                       args.min_analytic_speedup, args.min_batch_speedup,
                       allow_new=args.allow_new)
    if problems:
        print(f"bench regression vs {args.baseline} "
              f"(factor {args.factor:g}):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    n = sum(1 for r in baseline["results"].values()
            for m in r if m.endswith(RATE_SUFFIX))
    print(f"bench check ok ({n} rate metrics within {args.factor:g}x of "
          f"{args.baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
