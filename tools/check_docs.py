#!/usr/bin/env python3
"""Docs consistency checker (run by the CI ``docs`` job and the tier-1
test ``tests/test_docs.py``).

Three checks:

1. **Links** — every intra-repo markdown link in the repository's
   ``*.md`` files (root + ``docs/``) must point at a file that exists.
   External (``http(s)://``), ``mailto:`` and pure-anchor links are
   skipped; placeholder links like ``<this-repo>`` are ignored.
2. **Workload coverage** — every canonical workload name in
   ``repro.workloads.registry.all_workloads()`` must appear verbatim in
   ``docs/workloads.md``, so the gallery can never silently fall behind
   the registry.
3. **Docs reachability** — every file in ``docs/`` must be linked from
   ``README.md`` or ``docs/architecture.md``, so new documents (e.g.
   ``docs/tuner.md``, ``docs/testing.md``) can never be orphaned.

Exit status 0 when clean; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Link targets that are not intra-repo file references.
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def markdown_files() -> List[Path]:
    """The repo's prose: root-level and docs/ markdown files."""
    files = sorted(REPO_ROOT.glob("*.md")) + sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links() -> List[str]:
    """Return one error string per unresolved intra-repo link."""
    errors: List[str] = []
    for md in markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or "<" in target:
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO_ROOT)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def check_workload_coverage() -> List[str]:
    """Return one error string per registry name missing from the gallery."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.workloads.registry import all_workloads
    finally:
        sys.path.pop(0)
    gallery = REPO_ROOT / "docs" / "workloads.md"
    if not gallery.is_file():
        return ["docs/workloads.md is missing"]
    text = gallery.read_text(encoding="utf-8")

    def documented(name: str) -> bool:
        # Boundary-aware: `cg/fv1/N=1` must not pass by being a prefix
        # of a documented `cg/fv1/N=16` (names may be followed by
        # punctuation/backticks but never by more name characters).
        return re.search(re.escape(name) + r"(?![\w@=])", text) is not None

    return [
        f"docs/workloads.md: registry workload {name!r} not documented"
        for name in all_workloads()
        if not documented(name)
    ]


def check_docs_reachable() -> List[str]:
    """Return one error string per docs/ file no entry point links to."""
    entry_points = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "architecture.md"]
    linked: set = set()
    for md in entry_points:
        if not md.is_file():
            continue
        for match in _LINK.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or "<" in target:
                continue
            path = target.split("#", 1)[0]
            if path:
                linked.add((md.parent / path).resolve())
    errors = []
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        if doc.resolve() in linked or doc.name == "architecture.md":
            continue
        errors.append(
            f"docs/{doc.name}: not linked from README.md or docs/architecture.md"
        )
    return errors


def main() -> int:
    errors = check_links() + check_workload_coverage() + check_docs_reachable()
    if errors:
        print("docs check FAILED:")
        for e in errors:
            print(f"  {e}")
        return 1
    n_files = len(markdown_files())
    print(f"docs check ok ({n_files} markdown files, all registry "
          "workloads documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
