#!/usr/bin/env python3
"""Dependency-free line-coverage gate for the tier-1 suite.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=...`` in the
``coverage`` job); this tool reproduces the measurement with nothing but
the standard library so the ratchet can be checked in any environment —
including the bare container this repo is developed in, where ``pip
install`` is unavailable.

Method: a ``sys.settrace`` hook that declines to trace any frame outside
``src/repro`` (so the suite's own machinery and numpy hot loops run at
full speed), recording executed ``(file, line)`` pairs.  The denominator
is the set of *executable* lines per file, read from the compiled code
objects' ``co_lines()`` tables, minus statements annotated ``# pragma:
no cover`` (whole block when the annotation sits on a ``def``/``class``/
``if`` header, matching coverage.py's convention).

Numbers track coverage.py closely but not exactly (it excludes a few
more compiler artefacts), so the CI floor should be ratcheted from the
``pytest-cov`` report and this tool's ``--fail-under`` kept a point or
two beneath its own measurement.

Beyond the line ratchet, the gate is **structural**: every top-level
``src/repro/*`` package must be measured and exercised.  A new subsystem
(``analytic``, ``tuner``, ``service``...) that never runs under the
suite fails the gate outright rather than merely diluting the
percentage — the failure mode this guards against is a package added
with its tests forgotten or deselected.

``--verify-packages coverage.json`` applies the same structural check to
a coverage.py JSON report (``pytest --cov --cov-report=json``), so the
CI job that measures with the real tool shares the package contract.

Usage::

    python tools/check_coverage.py                  # measure + report
    python tools/check_coverage.py --fail-under 80  # gate (exit 1 below)
    python tools/check_coverage.py --top 15         # worst-covered files
    python tools/check_coverage.py --verify-packages coverage.json
"""

from __future__ import annotations

import argparse
import ast
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

PRAGMA = "pragma: no cover"


def executable_lines(path: Path) -> Set[int]:
    """Executable line numbers of ``path`` per its compiled code objects,
    minus ``# pragma: no cover`` statements/blocks."""
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _, _, line in co.co_lines():
            if line is not None:
                lines.add(line)
        for const in co.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)

    src_lines = source.split("\n")
    excluded: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            continue
        if not isinstance(node, ast.stmt):
            continue
        header = src_lines[lineno - 1]
        if PRAGMA in header:
            excluded.update(range(lineno, end + 1))
    return lines - excluded


def collect_targets() -> Dict[str, Set[int]]:
    return {
        str(p): executable_lines(p)
        for p in sorted(SRC_ROOT.rglob("*.py"))
    }


def top_level_packages() -> "List[str]":
    """Names of the top-level ``src/repro/*`` packages."""
    return sorted(p.name for p in SRC_ROOT.iterdir()
                  if p.is_dir() and (p / "__init__.py").is_file())


def package_of(filename: str) -> "Optional[str]":
    """Top-level package a measured file belongs to (None for the
    ``repro`` root modules themselves)."""
    try:
        rel = Path(filename).resolve().relative_to(SRC_ROOT)
    except ValueError:
        return None
    return rel.parts[0] if len(rel.parts) > 1 else None


def check_packages(measured: "Set[str]", exercised: "Set[str]",
                   source: str) -> "List[str]":
    """Structural failures: packages absent from the measurement or
    never executed by the suite."""
    problems = []
    for package in top_level_packages():
        if package not in measured:
            problems.append(
                f"package src/repro/{package}/ is missing from the "
                f"{source} measurement — its files were never collected")
        elif package not in exercised:
            problems.append(
                f"package src/repro/{package}/ was measured but no line "
                f"in it executed under the {source} run")
    return problems


def verify_packages_json(path: str) -> int:
    """Gate a coverage.py JSON report on the package contract."""
    import json

    data = json.loads(Path(path).read_text(encoding="utf-8"))
    files = data.get("files")
    if not isinstance(files, dict):
        print(f"check_coverage: {path} is not a coverage.py JSON report "
              "(no 'files' object)", file=sys.stderr)
        return 1
    measured: Set[str] = set()
    exercised: Set[str] = set()
    for filename, entry in files.items():
        package = package_of(str(REPO_ROOT / filename)
                             if not Path(filename).is_absolute()
                             else filename)
        if package is None:
            continue
        measured.add(package)
        if entry.get("summary", {}).get("covered_lines", 0) > 0:
            exercised.add(package)
    problems = check_packages(measured, exercised, path)
    if problems:
        print("check_coverage: package verification FAILED:",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"check_coverage: ok — all {len(top_level_packages())} "
          f"top-level src/repro packages measured and exercised in {path}")
    return 0


def run_suite_traced(pytest_args: Tuple[str, ...]) -> Tuple[Dict[str, Set[int]], int]:
    """Run pytest in-process under the selective tracer."""
    hit: Dict[str, Set[int]] = {}
    prefix = str(SRC_ROOT)

    def local_trace(frame, event, arg):
        if event == "line":
            hit_file = hit.get(frame.f_code.co_filename)
            if hit_file is not None:
                hit_file.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if filename not in hit:
            hit[filename] = set()
        hit[filename].add(frame.f_lineno)
        return local_trace

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import pytest  # deferred: the tracer must not time pytest's import

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = pytest.main(["-q", "-p", "no:cacheprovider",
                              str(REPO_ROOT / "tests"), *pytest_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return hit, int(status)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fail-under", type=float, default=None, metavar="PCT",
                        help="exit 1 when total line coverage is below PCT")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="show the N worst-covered files (default 10)")
    parser.add_argument("--verify-packages", metavar="COVERAGE_JSON",
                        default=None,
                        help="instead of measuring, check that a "
                             "coverage.py JSON report measured and "
                             "exercised every top-level src/repro package")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args()

    if args.verify_packages is not None:
        return verify_packages_json(args.verify_packages)

    targets = collect_targets()
    hit, status = run_suite_traced(tuple(args.pytest_args))
    if status != 0:
        print(f"check_coverage: test suite failed (exit {status}); "
              "coverage not evaluated", file=sys.stderr)
        return status

    total_exec = total_hit = 0
    per_file = []
    for filename, lines in targets.items():
        covered = len(lines & hit.get(filename, set()))
        total_exec += len(lines)
        total_hit += covered
        pct = 100.0 * covered / len(lines) if lines else 100.0
        per_file.append((pct, filename, covered, len(lines)))

    per_file.sort()
    print(f"\nworst-covered files (of {len(per_file)}):")
    for pct, filename, covered, n in per_file[: args.top]:
        rel = Path(filename).relative_to(REPO_ROOT)
        print(f"  {pct:6.1f}%  {covered:5d}/{n:<5d}  {rel}")

    measured = {p for p in (package_of(f) for f in targets) if p}
    exercised = {p for p, lines in
                 ((package_of(f), targets[f] & hit.get(f, set()))
                  for f in targets)
                 if p and lines}
    package_problems = check_packages(measured, exercised, "traced")

    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL: {total_hit}/{total_exec} lines = {total_pct:.2f}%")
    if package_problems:
        print("check_coverage: package verification FAILED:",
              file=sys.stderr)
        for p in package_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"packages: all {len(top_level_packages())} top-level "
          "src/repro packages measured and exercised")
    if args.fail_under is not None and total_pct < args.fail_under:
        print(f"check_coverage: FAILED — {total_pct:.2f}% is below the "
              f"{args.fail_under:.2f}% floor", file=sys.stderr)
        return 1
    if args.fail_under is not None:
        print(f"check_coverage: ok (floor {args.fail_under:.2f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
