#!/usr/bin/env python3
"""Dependency-free line-coverage gate for the tier-1 suite.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=...`` in the
``coverage`` job); this tool reproduces the measurement with nothing but
the standard library so the ratchet can be checked in any environment —
including the bare container this repo is developed in, where ``pip
install`` is unavailable.

Method: a ``sys.settrace`` hook that declines to trace any frame outside
``src/repro`` (so the suite's own machinery and numpy hot loops run at
full speed), recording executed ``(file, line)`` pairs.  The denominator
is the set of *executable* lines per file, read from the compiled code
objects' ``co_lines()`` tables, minus statements annotated ``# pragma:
no cover`` (whole block when the annotation sits on a ``def``/``class``/
``if`` header, matching coverage.py's convention).

Numbers track coverage.py closely but not exactly (it excludes a few
more compiler artefacts), so the CI floor should be ratcheted from the
``pytest-cov`` report and this tool's ``--fail-under`` kept a point or
two beneath its own measurement.

Usage::

    python tools/check_coverage.py                  # measure + report
    python tools/check_coverage.py --fail-under 80  # gate (exit 1 below)
    python tools/check_coverage.py --top 15         # worst-covered files
"""

from __future__ import annotations

import argparse
import ast
import sys
import threading
from pathlib import Path
from typing import Dict, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

PRAGMA = "pragma: no cover"


def executable_lines(path: Path) -> Set[int]:
    """Executable line numbers of ``path`` per its compiled code objects,
    minus ``# pragma: no cover`` statements/blocks."""
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _, _, line in co.co_lines():
            if line is not None:
                lines.add(line)
        for const in co.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)

    src_lines = source.split("\n")
    excluded: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            continue
        if not isinstance(node, ast.stmt):
            continue
        header = src_lines[lineno - 1]
        if PRAGMA in header:
            excluded.update(range(lineno, end + 1))
    return lines - excluded


def collect_targets() -> Dict[str, Set[int]]:
    return {
        str(p): executable_lines(p)
        for p in sorted(SRC_ROOT.rglob("*.py"))
    }


def run_suite_traced(pytest_args: Tuple[str, ...]) -> Tuple[Dict[str, Set[int]], int]:
    """Run pytest in-process under the selective tracer."""
    hit: Dict[str, Set[int]] = {}
    prefix = str(SRC_ROOT)

    def local_trace(frame, event, arg):
        if event == "line":
            hit_file = hit.get(frame.f_code.co_filename)
            if hit_file is not None:
                hit_file.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if filename not in hit:
            hit[filename] = set()
        hit[filename].add(frame.f_lineno)
        return local_trace

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import pytest  # deferred: the tracer must not time pytest's import

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = pytest.main(["-q", "-p", "no:cacheprovider",
                              str(REPO_ROOT / "tests"), *pytest_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return hit, int(status)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fail-under", type=float, default=None, metavar="PCT",
                        help="exit 1 when total line coverage is below PCT")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="show the N worst-covered files (default 10)")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args()

    targets = collect_targets()
    hit, status = run_suite_traced(tuple(args.pytest_args))
    if status != 0:
        print(f"check_coverage: test suite failed (exit {status}); "
              "coverage not evaluated", file=sys.stderr)
        return status

    total_exec = total_hit = 0
    per_file = []
    for filename, lines in targets.items():
        covered = len(lines & hit.get(filename, set()))
        total_exec += len(lines)
        total_hit += covered
        pct = 100.0 * covered / len(lines) if lines else 100.0
        per_file.append((pct, filename, covered, len(lines)))

    per_file.sort()
    print(f"\nworst-covered files (of {len(per_file)}):")
    for pct, filename, covered, n in per_file[: args.top]:
        rel = Path(filename).relative_to(REPO_ROOT)
        print(f"  {pct:6.1f}%  {covered:5d}/{n:<5d}  {rel}")

    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL: {total_hit}/{total_exec} lines = {total_pct:.2f}%")
    if args.fail_under is not None and total_pct < args.fail_under:
        print(f"check_coverage: FAILED — {total_pct:.2f}% is below the "
              f"{args.fail_under:.2f}% floor", file=sys.stderr)
        return 1
    if args.fail_under is not None:
        print(f"check_coverage: ok (floor {args.fail_under:.2f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
