#!/usr/bin/env python
"""CI chaos smoke for the sharded simulation fabric.

Stands up the shipped artifact for real — three ``repro serve`` daemon
subprocesses behind line-counting chaos proxies, one ``repro gateway``
over them — then SIGKILLs the shard owning the most of an 8-point sweep
right after its first streamed result.  The run must show:

* the sweep completes with all 8 points and ``requeued >= 1``
  (the dead shard's unfinished points were re-hashed onto survivors);
* a warm resubmit prints ``simulations re-run: 0`` (nothing the dead
  shard had already simulated was simulated again);
* the shared result store holds exactly one record per distinct
  traffic key.

The CI job greps the summary lines this script prints; any violated
invariant also fails the process with exit code 1.
"""

import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from fabric import (  # noqa: E402  (path bootstrap above)
    Fabric,
    busiest_proxy,
    duplicate_store_keys,
    store_record_keys,
)
from repro.analysis.service_report import (  # noqa: E402
    render_topology,
    summarize_sweep_outcome,
)
from repro.hw.config import GB  # noqa: E402
from repro.orchestrator.spec import SweepSpec  # noqa: E402
from repro.orchestrator.store import ResultStore  # noqa: E402

WORKLOADS = ("cg/fv1/N=1", "bicgstab/fv1/N=1", "gnn/cora", "mg/fv1/N=1")
CONFIGS = ("Flexagon", "CELLO")
BANDWIDTH_GB = 1000.0
N_POINTS = 8


def fingerprint(outcome):
    return [(p.workload, p.config,
             json.dumps(p.result.to_dict(), sort_keys=True))
            for p in outcome.points]


def main() -> int:
    points = SweepSpec(workloads=WORKLOADS, configs=CONFIGS,
                       bandwidths=(BANDWIDTH_GB * GB,)).points()
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-fabric-smoke-") as cache:
        fab = Fabric(cache, n_shards=3,
                     ping_timeout_s=2.0, health_interval_s=0.5)
        victim = busiest_proxy(fab.proxies, points)
        fab.proxies[victim].plan.kill_after_results = 1
        print(f"fabric: gateway over 3 shards; victim shard "
              f"{fab.proxies[victim].id} dies after its first result")
        with fab:
            with fab.client() as client:
                cold = client.submit_sweep(
                    list(WORKLOADS), configs=list(CONFIGS),
                    bandwidth_gb=[BANDWIDTH_GB])
                print("cold sweep through the chaos:")
                print(summarize_sweep_outcome(cold))
                warm = client.submit_sweep(
                    list(WORKLOADS), configs=list(CONFIGS),
                    bandwidth_gb=[BANDWIDTH_GB])
                print("warm resubmit:")
                print(summarize_sweep_outcome(warm))
                print(render_topology(client.topology()))

        if len(cold.points) != N_POINTS:
            failures.append(f"cold sweep streamed {len(cold.points)} "
                            f"of {N_POINTS} points")
        if cold.requeued < 1:
            failures.append("no points were requeued — the kill missed")
        if warm.simulations != 0:
            failures.append(f"warm resubmit re-ran {warm.simulations} "
                            "simulation(s)")
        if fingerprint(warm) != fingerprint(cold):
            failures.append("warm resubmit diverged from the chaos run")
        dupes = duplicate_store_keys(fab.results_file())
        if dupes:
            failures.append(f"duplicate store records: {dupes}")
        want_keys = {ResultStore.key_str(p.key()) for p in points}
        got_keys = set(store_record_keys(fab.results_file()))
        if got_keys != want_keys:
            failures.append(
                f"store keys diverge from the grid "
                f"(missing {sorted(want_keys - got_keys)}, "
                f"extra {sorted(got_keys - want_keys)})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("fabric smoke: all invariants hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
