#!/usr/bin/env python3
"""Bench-trend gate: detect slow performance drift across the committed
history of ``BENCH_*.json`` snapshots.

``check_bench.py`` compares one fresh run against one baseline with a
generous factor (10x), which catches cliffs but is blind to drift: ten
consecutive 20% regressions each pass the snapshot gate while the
kernel quietly gets 6x slower.  This tool closes that gap by fitting a
least-squares slope to ``log(rate)`` over the last N snapshots of every
size-independent rate metric (``*_per_s``) and failing when the fitted
per-step decline exceeds a threshold.

The log-domain fit makes the slope a *relative* change per snapshot —
``exp(slope) - 1`` is the average fractional step — so one noisy
snapshot cannot dominate the verdict the way a single endpoint
comparison would.

History sources (newest last):

* ``--from-git N`` — the last N committed versions of the baseline file
  (via ``git log`` + ``git show``), the CI mode;
* ``--files A B C`` — explicit report paths, oldest first (tests, local
  archaeology).

``--fresh PATH`` appends an uncommitted report as the newest snapshot,
so CI can ask "would merging this run tip any metric into decline?".

Fewer than ``--min-points`` snapshots is a pass ("insufficient
history"), not a failure: young repos and newly-added benches must not
brick the gate.

Usage::

    python tools/bench_trend.py --from-git 12 --fresh BENCH_fresh.json
    python tools/bench_trend.py --files old.json mid.json new.json \
        [--max-decline-pct 8] [--window 8] [--min-points 3]

Exit status 0 when clean (or insufficient history); 1 with a per-metric
report otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Rate metrics are comparable across snapshots (same machine class);
#: absolute times are not, so only ``*_per_s`` trends are fitted.
RATE_SUFFIX = "_per_s"


def load_report(path: str) -> Dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "results" not in data or not isinstance(data["results"], dict):
        raise SystemExit(f"{path}: not a bench report (no 'results' object)")
    return data


def git_history_reports(path: str, limit: int) -> List[Dict]:
    """The last ``limit`` committed versions of ``path``, oldest first.

    Unparseable historical blobs (pre-schema commits) are skipped, not
    fatal: the trend only needs the snapshots that were bench reports.
    """
    try:
        shas = subprocess.run(
            ["git", "log", "--format=%H", "-n", str(limit), "--", path],
            check=True, capture_output=True, text=True,
        ).stdout.split()
    except (subprocess.CalledProcessError, OSError) as exc:
        raise SystemExit(f"git log failed for {path}: {exc}")
    reports: List[Dict] = []
    for sha in reversed(shas):  # git log is newest-first
        try:
            blob = subprocess.run(
                ["git", "show", f"{sha}:{path}"],
                check=True, capture_output=True, text=True,
            ).stdout
            data = json.loads(blob)
        except (subprocess.CalledProcessError, OSError,
                json.JSONDecodeError):
            continue
        if isinstance(data.get("results"), dict):
            reports.append(data)
    return reports


def rate_series(reports: Sequence[Dict]) -> Dict[str, List[float]]:
    """``bench.metric`` -> positive rate values in snapshot order.

    A metric absent from some snapshot simply contributes fewer points
    (benches come and go); the fit below requires ``min_points`` of
    them before it says anything.
    """
    series: Dict[str, List[float]] = {}
    for report in reports:
        for bench, metrics in sorted(report["results"].items()):
            if not isinstance(metrics, dict):
                continue
            for metric, value in sorted(metrics.items()):
                if not metric.endswith(RATE_SUFFIX):
                    continue
                if isinstance(value, (int, float)) and value > 0:
                    series.setdefault(f"{bench}.{metric}",
                                      []).append(float(value))
    return series


def fit_slope(values: Sequence[float]) -> float:
    """Least-squares slope of ``log(value)`` against snapshot index."""
    n = len(values)
    ys = [math.log(v) for v in values]
    xs = list(range(n))
    x_mean = sum(xs) / n
    y_mean = sum(ys) / n
    denom = sum((x - x_mean) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - x_mean) * (y - y_mean)
               for x, y in zip(xs, ys)) / denom


def detect_regressions(reports: Sequence[Dict],
                       window: int = 8,
                       max_decline_pct: float = 8.0,
                       min_points: int = 3,
                       ) -> Tuple[List[str], int]:
    """Fit each rate metric's trend over the trailing ``window``
    snapshots; returns (problems, metrics_checked)."""
    problems: List[str] = []
    checked = 0
    for name, values in sorted(rate_series(reports).items()):
        values = values[-max(2, window):]
        if len(values) < min_points:
            continue
        checked += 1
        slope = fit_slope(values)
        decline_pct = (1.0 - math.exp(slope)) * 100.0
        if decline_pct > max_decline_pct:
            problems.append(
                f"{name}: declining {decline_pct:.1f}% per snapshot over "
                f"the last {len(values)} (latest {values[-1]:.3g}, "
                f"oldest in window {values[0]:.3g}; allowed "
                f"{max_decline_pct:g}%)")
    return problems, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--from-git", type=int, metavar="N", default=None,
                        help="use the last N committed versions of "
                             "--baseline as history")
    source.add_argument("--files", nargs="+", metavar="PATH", default=None,
                        help="explicit report paths, oldest first")
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="tracked report path for --from-git "
                             "(default BENCH_kernels.json)")
    parser.add_argument("--fresh", metavar="PATH", default=None,
                        help="append this uncommitted report as the "
                             "newest snapshot")
    parser.add_argument("--window", type=int, default=8,
                        help="trailing snapshots per fit (default 8)")
    parser.add_argument("--max-decline-pct", type=float, default=8.0,
                        help="allowed fitted decline per snapshot "
                             "(default 8%%)")
    parser.add_argument("--min-points", type=int, default=3,
                        help="snapshots required before a metric is "
                             "judged (default 3)")
    args = parser.parse_args(argv)
    if args.from_git is not None and args.from_git < 1:
        parser.error("--from-git must be >= 1")

    if args.files is not None:
        reports = [load_report(p) for p in args.files]
    else:
        reports = git_history_reports(args.baseline, args.from_git)
    if args.fresh is not None:
        reports.append(load_report(args.fresh))

    if len(reports) < args.min_points:
        print(f"bench trend: insufficient history ({len(reports)} "
              f"snapshot(s), need {args.min_points}); nothing to judge")
        return 0

    problems, checked = detect_regressions(
        reports, window=args.window,
        max_decline_pct=args.max_decline_pct,
        min_points=args.min_points)
    if problems:
        print(f"bench trend regression over {len(reports)} snapshot(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"bench trend ok ({checked} rate metric(s) within "
          f"{args.max_decline_pct:g}%/snapshot over {len(reports)} "
          "snapshot(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
